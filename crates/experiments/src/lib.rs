//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the paper.
//!
//! Each binary (one per table/figure — see `src/bin/`) reads the
//! experiment scale from the `HWPR_SCALE` environment variable:
//!
//! - `smoke` — seconds-long sanity runs (used by integration tests),
//! - `fast` — the default; minutes-long single-core runs that preserve
//!   the paper's comparisons at reduced population/model sizes,
//! - `paper` — the paper's full sizes (Table II hyperparameters,
//!   population 150 × 250 generations). Expect hours on one core.
//!
//! Reports are printed to stdout and written to `results/<name>.md`.

#![warn(missing_docs)]
pub mod exps;

use hwpr_core::baselines::SurrogatePair;
use hwpr_core::{HwPrNas, ModelConfig, SurrogateDataset, TrainConfig};
use hwpr_hwmodel::{Platform, SimBench, SimBenchConfig};
use hwpr_moo::{nadir_reference_point, pareto_front, MooWorkspace};
use hwpr_nasbench::{Architecture, Dataset, SearchSpaceId};
use hwpr_search::{
    random_search, HwPrNasEvaluator, MeasuredEvaluator, Moea, MoeaConfig, PairEvaluator,
    RandomSearchConfig, SearchResult,
};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

/// Experiment sizing preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long runs for CI/integration tests.
    Smoke,
    /// Default single-core scale preserving the paper's comparisons.
    Fast,
    /// The paper's full sizes.
    Paper,
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Scale::Smoke => "smoke",
            Scale::Fast => "fast",
            Scale::Paper => "paper",
        })
    }
}

impl Scale {
    /// Reads `HWPR_SCALE` through the shared warn-and-default policy
    /// (`smoke` | `fast` | `paper`); unset or empty means
    /// [`Scale::Fast`], anything else warns and falls back to it.
    pub fn from_env() -> Self {
        hwpr_obs::env_or_else(
            "HWPR_SCALE",
            "smoke, fast or paper",
            Self::parse,
            || Scale::Fast,
            Scale::Fast,
        )
    }

    /// Parses an `HWPR_SCALE` value; the empty string means the default
    /// scale (so `HWPR_SCALE= cmd` behaves like an unset variable).
    fn parse(spec: &str) -> Option<Self> {
        match spec.trim() {
            "smoke" => Some(Scale::Smoke),
            "" | "fast" => Some(Scale::Fast),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// NAS-Bench-201 benchmark rows to materialise.
    pub fn nb201_rows(self) -> usize {
        match self {
            Scale::Smoke => 140,
            Scale::Fast => 900,
            Scale::Paper => 4000,
        }
    }

    /// FBNet benchmark rows to materialise.
    pub fn fbnet_rows(self) -> usize {
        match self {
            Scale::Smoke => 80,
            Scale::Fast => 500,
            Scale::Paper => 4000,
        }
    }

    /// Independent repetitions (the paper uses 5).
    pub fn runs(self) -> usize {
        match self {
            Scale::Smoke => 2,
            Scale::Fast => 5,
            Scale::Paper => 5,
        }
    }

    /// Surrogate network sizes.
    pub fn model_config(self) -> ModelConfig {
        match self {
            Scale::Smoke => ModelConfig::tiny(),
            Scale::Fast => ModelConfig {
                gcn_hidden: 64,
                gcn_layers: 2,
                lstm_hidden: 48,
                lstm_layers: 2,
                embed_dim: 20,
                mlp_hidden: vec![48],
                dropout: 0.02,
                seed: 0,
            },
            Scale::Paper => ModelConfig::paper(),
        }
    }

    /// Surrogate training schedule.
    pub fn train_config(self) -> TrainConfig {
        match self {
            Scale::Smoke => TrainConfig::tiny(),
            Scale::Fast => TrainConfig {
                epochs: 20,
                early_stop_patience: 8,
                batch_size: 128,
                learning_rate: 2e-3,
                weight_decay: 3e-4,
                rank_loss_weight: 1.0,
                rmse_loss_weight: 1.0,
                fusion_finetune_epochs: 12,
                tie_regularizer_weight: 0.2,
                seed: 0,
            },
            Scale::Paper => TrainConfig::paper(),
        }
    }

    /// MOEA settings over the given spaces.
    ///
    /// # Panics
    ///
    /// Panics if `spaces` is empty.
    pub fn moea_config(self, spaces: Vec<SearchSpaceId>) -> MoeaConfig {
        assert!(!spaces.is_empty(), "at least one space required");
        let mut cfg = match self {
            Scale::Smoke => MoeaConfig {
                population: 12,
                generations: 6,
                ..MoeaConfig::small(spaces[0])
            },
            Scale::Fast => MoeaConfig {
                population: 40,
                generations: 30,
                mutation_rate: 0.9,
                crossover_rate: 0.5,
                tournament: 2,
                spaces: spaces.clone(),
                budget: Some(Duration::from_secs(24 * 3600)),
                record_populations: false,
                seed_population: Vec::new(),
                seed: 0,
            },
            Scale::Paper => MoeaConfig::paper(spaces[0]),
        };
        cfg.spaces = spaces;
        cfg
    }

    /// Random-search settings matched to the MOEA's evaluation volume.
    pub fn random_config(self, spaces: Vec<SearchSpaceId>) -> RandomSearchConfig {
        let moea = self.moea_config(spaces.clone());
        RandomSearchConfig {
            samples: moea.population * (moea.generations + 1),
            keep: moea.population,
            spaces,
            budget: moea.budget,
            seed: 0,
        }
    }
}

/// Shared context: benchmark tables plus output plumbing.
#[derive(Debug)]
pub struct Harness {
    /// Active scale.
    pub scale: Scale,
    nb201: SimBench,
    fbnet: SimBench,
}

impl Harness {
    /// Builds the harness, materialising both benchmark tables.
    pub fn new() -> Self {
        let scale = Scale::from_env();
        Self::with_scale(scale)
    }

    /// Builds the harness at an explicit scale.
    pub fn with_scale(scale: Scale) -> Self {
        let nb201 = SimBench::generate(SimBenchConfig {
            space: SearchSpaceId::NasBench201,
            sample_size: Some(scale.nb201_rows()),
            seed: 0xBE0C,
        });
        let fbnet = SimBench::generate(SimBenchConfig {
            space: SearchSpaceId::FBNet,
            sample_size: Some(scale.fbnet_rows()),
            seed: 0xFBE7,
        });
        Self {
            scale,
            nb201,
            fbnet,
        }
    }

    /// The NAS-Bench-201 table.
    pub fn nb201(&self) -> &SimBench {
        &self.nb201
    }

    /// The FBNet table.
    pub fn fbnet(&self) -> &SimBench {
        &self.fbnet
    }

    /// Single-space training data for `(dataset, platform)`.
    pub fn dataset(
        &self,
        space: SearchSpaceId,
        dataset: Dataset,
        platform: Platform,
    ) -> SurrogateDataset {
        let bench = match space {
            SearchSpaceId::NasBench201 => &self.nb201,
            SearchSpaceId::FBNet => &self.fbnet,
        };
        SurrogateDataset::from_simbench(bench, dataset, platform).expect("bench is non-empty")
    }

    /// Mixed-space training data (both benchmarks, as in Table III/IV).
    pub fn mixed_dataset(&self, dataset: Dataset, platform: Platform) -> SurrogateDataset {
        let mut entries = self.nb201.entries().to_vec();
        entries.extend_from_slice(self.fbnet.entries());
        SurrogateDataset::from_entries(&entries, dataset, platform).expect("bench is non-empty")
    }

    /// A measured-values evaluator consistent with the benchmark tables.
    pub fn measured(&self, dataset: Dataset, platform: Platform) -> MeasuredEvaluator {
        MeasuredEvaluator::for_bench(&self.nb201, dataset, platform)
    }

    /// Trains HW-PR-NAS on `data` with the scale's configs and `seed`.
    ///
    /// # Panics
    ///
    /// Panics on training failure (configuration is known-good).
    pub fn train_hw_pr_nas(&self, data: &SurrogateDataset, seed: u64) -> HwPrNas {
        let (model, _) = HwPrNas::fit(
            data,
            &self.scale.model_config().with_seed(seed),
            &self.scale.train_config().with_seed(seed),
        )
        .expect("HW-PR-NAS training failed");
        model
    }

    /// Trains a BRP-NAS-style surrogate pair.
    ///
    /// # Panics
    ///
    /// Panics on training failure.
    pub fn train_brp_nas(&self, data: &SurrogateDataset, seed: u64) -> SurrogatePair {
        let (pair, _) = SurrogatePair::brp_nas(
            data,
            &self.scale.model_config().with_seed(seed),
            &self.scale.train_config().with_seed(seed),
        )
        .expect("BRP-NAS training failed");
        pair
    }

    /// Trains a GATES-style surrogate pair.
    ///
    /// # Panics
    ///
    /// Panics on training failure.
    pub fn train_gates(&self, data: &SurrogateDataset, seed: u64) -> SurrogatePair {
        let (pair, _) = SurrogatePair::gates(
            data,
            &self.scale.model_config().with_seed(seed),
            &self.scale.train_config().with_seed(seed),
        )
        .expect("GATES training failed");
        pair
    }

    /// Runs the MOEA with an HW-PR-NAS evaluator.
    ///
    /// # Panics
    ///
    /// Panics on search failure.
    pub fn run_moea_hwpr(
        &self,
        model: HwPrNas,
        platform: Platform,
        spaces: Vec<SearchSpaceId>,
        seed: u64,
    ) -> SearchResult {
        let moea = Moea::new(self.scale.moea_config(spaces).with_seed(seed)).expect("valid config");
        let mut eval = HwPrNasEvaluator::new(model, platform);
        moea.run(&mut eval).expect("search failed")
    }

    /// Runs the MOEA with an HW-PR-NAS evaluator, seeding half the initial
    /// population with the best-scored architectures of `candidates`
    /// (Algorithm 1's "sampling strategy" initialisation; used by the
    /// mixed-space experiments where random initialisation at reduced
    /// population sizes cannot discover both spaces' elite regions).
    ///
    /// # Panics
    ///
    /// Panics on search failure.
    pub fn run_moea_hwpr_seeded(
        &self,
        model: HwPrNas,
        platform: Platform,
        spaces: Vec<SearchSpaceId>,
        candidates: &[Architecture],
        seed: u64,
    ) -> SearchResult {
        let mut config = self.scale.moea_config(spaces).with_seed(seed);
        let scores = model
            .predict_scores(candidates, platform)
            .expect("scoring candidates failed");
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
        config.seed_population = order
            .into_iter()
            .take(config.population / 2)
            .map(|i| candidates[i].clone())
            .collect();
        let moea = Moea::new(config).expect("valid config");
        let mut eval = HwPrNasEvaluator::new(model, platform);
        moea.run(&mut eval).expect("search failed")
    }

    /// Runs the MOEA with a two-surrogate evaluator.
    ///
    /// # Panics
    ///
    /// Panics on search failure.
    pub fn run_moea_pair(
        &self,
        pair: SurrogatePair,
        spaces: Vec<SearchSpaceId>,
        seed: u64,
    ) -> SearchResult {
        let moea = Moea::new(self.scale.moea_config(spaces).with_seed(seed)).expect("valid config");
        let mut eval = PairEvaluator::new(pair);
        moea.run(&mut eval).expect("search failed")
    }

    /// Runs the MOEA with true measured values.
    ///
    /// # Panics
    ///
    /// Panics on search failure.
    pub fn run_moea_measured(
        &self,
        dataset: Dataset,
        platform: Platform,
        spaces: Vec<SearchSpaceId>,
        seed: u64,
    ) -> SearchResult {
        let moea = Moea::new(self.scale.moea_config(spaces).with_seed(seed)).expect("valid config");
        let mut eval = self.measured(dataset, platform);
        moea.run(&mut eval).expect("search failed")
    }

    /// Runs random search with any evaluator.
    ///
    /// # Panics
    ///
    /// Panics on search failure.
    pub fn run_random(
        &self,
        evaluator: &mut dyn hwpr_search::Evaluator,
        spaces: Vec<SearchSpaceId>,
        seed: u64,
    ) -> SearchResult {
        let cfg = self.scale.random_config(spaces).with_seed(seed);
        random_search(&cfg, evaluator).expect("random search failed")
    }
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

/// True objective vectors of a population under the oracle.
pub fn true_objectives(pop: &[Architecture], oracle: &MeasuredEvaluator) -> Vec<Vec<f64>> {
    pop.iter().map(|a| oracle.true_objectives(a)).collect()
}

/// The non-dominated subset of a population's true objectives.
///
/// # Panics
///
/// Panics if `pop` is empty.
pub fn true_front(pop: &[Architecture], oracle: &MeasuredEvaluator) -> Vec<Vec<f64>> {
    let objs = true_objectives(pop, oracle);
    pareto_front(&objs)
        .expect("non-empty population")
        .into_iter()
        .map(|i| objs[i].clone())
        .collect()
}

/// Hypervolume of a population's true Pareto front under `reference`.
///
/// # Panics
///
/// Panics if the reference does not bound the population.
pub fn population_hypervolume(
    pop: &[Architecture],
    oracle: &MeasuredEvaluator,
    reference: &[f64],
) -> f64 {
    // the hypervolume kernel extracts the non-dominated front itself, so
    // the objectives go in directly — one pass instead of front + HV
    let objs = true_objectives(pop, oracle);
    let mut moo = MooWorkspace::new();
    moo.hypervolume(&objs, reference)
        .expect("reference must bound the population")
}

/// A reference point bounding every listed objective set (nadir + 10 %).
///
/// # Panics
///
/// Panics if `sets` is empty or degenerate.
pub fn shared_reference(sets: &[Vec<Vec<f64>>]) -> Vec<f64> {
    let all: Vec<Vec<f64>> = sets.iter().flatten().cloned().collect();
    let nadir = nadir_reference_point(&all, 0.0).expect("non-empty objective sets");
    nadir.iter().map(|v| v * 1.1 + 1e-9).collect()
}

/// Reference objective sets approximating the *true* NAS-Bench-201
/// front for `(dataset, platform)`.
///
/// At [`Scale::Paper`] the whole space (15 625 architectures) is
/// enumerated, as the paper does; at [`Scale::Fast`] a deterministic 1-in-5
/// stratified subsample is enumerated (the resulting front is visually
/// indistinguishable and is noted in the reports); at [`Scale::Smoke`] the
/// materialised benchmark rows stand in.
pub fn nb201_reference_objectives(
    h: &Harness,
    dataset: Dataset,
    platform: Platform,
) -> Vec<Vec<f64>> {
    let oracle = h.measured(dataset, platform);
    let stride = match h.scale {
        Scale::Smoke => return h.nb201().objective_matrix(dataset, platform),
        Scale::Fast => 5,
        Scale::Paper => 1,
    };
    (0..SearchSpaceId::NasBench201.size())
        .step_by(stride)
        .map(|i| {
            let arch = Architecture::nb201_from_index(i).expect("index in range");
            oracle.true_objectives(&arch)
        })
        .collect()
}

/// Formats a duration compactly for tables.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 3600.0 {
        format!("{:.1} h", s / 3600.0)
    } else if s >= 60.0 {
        format!("{:.1} min", s / 60.0)
    } else if s >= 1.0 {
        format!("{s:.1} s")
    } else {
        format!("{:.0} ms", s * 1e3)
    }
}

/// Prints a report and writes it to `results/<name>.md`.
pub fn write_report(name: &str, content: &str) {
    println!("{content}");
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.md"));
    if let Err(e) = std::fs::write(&path, content) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        eprintln!("[report saved to {}]", path.display());
    }
}

/// The `results/` directory (next to the workspace root when run via
/// cargo, or the current directory otherwise).
pub fn results_dir() -> PathBuf {
    std::env::var("CARGO_MANIFEST_DIR")
        .map(|m| PathBuf::from(m).join("../../results"))
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Minimal markdown table builder.
#[derive(Debug, Default, Clone)]
pub struct MarkdownTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl MarkdownTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Renders the table as markdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_presets() {
        assert_eq!(Scale::Fast.nb201_rows(), 900);
        assert_eq!(Scale::Smoke.runs(), 2);
        assert_eq!(Scale::Paper.model_config(), ModelConfig::paper());
        assert_eq!(Scale::Paper.train_config(), TrainConfig::paper());
        let rs = Scale::Smoke.random_config(vec![SearchSpaceId::NasBench201]);
        assert_eq!(rs.samples, 12 * 7);
    }

    #[test]
    fn markdown_table_renders() {
        let mut t = MarkdownTable::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]).row(vec!["3", "4"]);
        let md = t.render();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 3 | 4 |"));
        assert_eq!(md.lines().count(), 4);
    }

    #[test]
    fn fmt_duration_ranges() {
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5 ms");
        assert_eq!(fmt_duration(Duration::from_secs(5)), "5.0 s");
        assert_eq!(fmt_duration(Duration::from_secs(120)), "2.0 min");
        assert_eq!(fmt_duration(Duration::from_secs(7200)), "2.0 h");
    }

    #[test]
    fn shared_reference_bounds_inputs() {
        let sets = vec![vec![vec![1.0, 10.0], vec![2.0, 5.0]], vec![vec![3.0, 1.0]]];
        let r = shared_reference(&sets);
        for set in &sets {
            for p in set {
                for (x, rx) in p.iter().zip(&r) {
                    assert!(x < rx);
                }
            }
        }
    }

    #[test]
    fn smoke_harness_builds_and_searches() {
        let h = Harness::with_scale(Scale::Smoke);
        assert_eq!(h.nb201().len(), 140);
        assert_eq!(h.fbnet().len(), 80);
        let data = h.dataset(
            SearchSpaceId::NasBench201,
            Dataset::Cifar10,
            Platform::EdgeGpu,
        );
        let model = h.train_hw_pr_nas(&data, 1);
        let result = h.run_moea_hwpr(
            model,
            Platform::EdgeGpu,
            vec![SearchSpaceId::NasBench201],
            1,
        );
        assert_eq!(result.population.len(), 12);
        let oracle = h.measured(Dataset::Cifar10, Platform::EdgeGpu);
        let objs = true_objectives(&result.population, &oracle);
        let reference = shared_reference(&[objs]);
        let hv = population_hypervolume(&result.population, &oracle, &reference);
        assert!(hv > 0.0);
    }
}
