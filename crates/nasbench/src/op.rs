//! Candidate operations of both search spaces.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Coarse operation category used by the hardware cost models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Standard (dense) convolution.
    Conv,
    /// Depthwise convolution (one filter per channel).
    DepthwiseConv,
    /// Grouped convolution with more than one group.
    GroupedConv,
    /// Pooling.
    Pool,
    /// Identity / skip connection.
    Skip,
    /// Zeroize (the NAS-Bench-201 `none` op).
    Zero,
    /// Fully-connected layer.
    Linear,
}

/// The five NAS-Bench-201 edge operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Nb201Op {
    /// `none`: the edge outputs zero.
    None,
    /// `skip_connect`: identity.
    SkipConnect,
    /// `nor_conv_1x1`: ReLU-Conv1x1-BN.
    NorConv1x1,
    /// `nor_conv_3x3`: ReLU-Conv3x3-BN.
    NorConv3x3,
    /// `avg_pool_3x3`.
    AvgPool3x3,
}

impl Nb201Op {
    /// All operations, in canonical index order.
    pub const ALL: [Nb201Op; 5] = [
        Nb201Op::None,
        Nb201Op::SkipConnect,
        Nb201Op::NorConv1x1,
        Nb201Op::NorConv3x3,
        Nb201Op::AvgPool3x3,
    ];

    /// Canonical index (0..5).
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&o| o == self)
            .expect("op in ALL")
    }

    /// Operation from its canonical index.
    pub fn from_index(i: usize) -> Option<Self> {
        Self::ALL.get(i).copied()
    }

    /// The NAS-Bench-201 string name (`nor_conv_3x3`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Nb201Op::None => "none",
            Nb201Op::SkipConnect => "skip_connect",
            Nb201Op::NorConv1x1 => "nor_conv_1x1",
            Nb201Op::NorConv3x3 => "nor_conv_3x3",
            Nb201Op::AvgPool3x3 => "avg_pool_3x3",
        }
    }

    /// Parses a NAS-Bench-201 op name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|o| o.name() == name)
    }

    /// Convolution kernel size, when applicable.
    pub fn kernel(self) -> Option<usize> {
        match self {
            Nb201Op::NorConv1x1 => Some(1),
            Nb201Op::NorConv3x3 | Nb201Op::AvgPool3x3 => Some(3),
            _ => None,
        }
    }

    /// Hardware cost category.
    pub fn kind(self) -> OpKind {
        match self {
            Nb201Op::None => OpKind::Zero,
            Nb201Op::SkipConnect => OpKind::Skip,
            Nb201Op::NorConv1x1 | Nb201Op::NorConv3x3 => OpKind::Conv,
            Nb201Op::AvgPool3x3 => OpKind::Pool,
        }
    }
}

impl fmt::Display for Nb201Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The nine FBNet candidate blocks: MBConv `k{kernel}_e{expansion}`
/// (optionally grouped, `_g2`) plus `skip`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FbnetOp {
    /// MBConv kernel 3, expansion 1.
    K3E1,
    /// MBConv kernel 3, expansion 1, grouped 1x1 convs (2 groups).
    K3E1G2,
    /// MBConv kernel 3, expansion 3.
    K3E3,
    /// MBConv kernel 3, expansion 6.
    K3E6,
    /// MBConv kernel 5, expansion 1.
    K5E1,
    /// MBConv kernel 5, expansion 1, grouped 1x1 convs (2 groups).
    K5E1G2,
    /// MBConv kernel 5, expansion 3.
    K5E3,
    /// MBConv kernel 5, expansion 6.
    K5E6,
    /// Identity (skip the layer).
    Skip,
}

impl FbnetOp {
    /// All blocks, in canonical index order.
    pub const ALL: [FbnetOp; 9] = [
        FbnetOp::K3E1,
        FbnetOp::K3E1G2,
        FbnetOp::K3E3,
        FbnetOp::K3E6,
        FbnetOp::K5E1,
        FbnetOp::K5E1G2,
        FbnetOp::K5E3,
        FbnetOp::K5E6,
        FbnetOp::Skip,
    ];

    /// Canonical index (0..9).
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&o| o == self)
            .expect("op in ALL")
    }

    /// Operation from its canonical index.
    pub fn from_index(i: usize) -> Option<Self> {
        Self::ALL.get(i).copied()
    }

    /// Block name in FBNet notation (`k3_e6`, `skip`, ...).
    pub fn name(self) -> &'static str {
        match self {
            FbnetOp::K3E1 => "k3_e1",
            FbnetOp::K3E1G2 => "k3_e1_g2",
            FbnetOp::K3E3 => "k3_e3",
            FbnetOp::K3E6 => "k3_e6",
            FbnetOp::K5E1 => "k5_e1",
            FbnetOp::K5E1G2 => "k5_e1_g2",
            FbnetOp::K5E3 => "k5_e3",
            FbnetOp::K5E6 => "k5_e6",
            FbnetOp::Skip => "skip",
        }
    }

    /// Parses an FBNet block name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|o| o.name() == name)
    }

    /// Depthwise kernel size (None for `skip`).
    pub fn kernel(self) -> Option<usize> {
        match self {
            FbnetOp::K3E1 | FbnetOp::K3E1G2 | FbnetOp::K3E3 | FbnetOp::K3E6 => Some(3),
            FbnetOp::K5E1 | FbnetOp::K5E1G2 | FbnetOp::K5E3 | FbnetOp::K5E6 => Some(5),
            FbnetOp::Skip => None,
        }
    }

    /// Channel expansion ratio (None for `skip`).
    pub fn expansion(self) -> Option<usize> {
        match self {
            FbnetOp::K3E1 | FbnetOp::K3E1G2 | FbnetOp::K5E1 | FbnetOp::K5E1G2 => Some(1),
            FbnetOp::K3E3 | FbnetOp::K5E3 => Some(3),
            FbnetOp::K3E6 | FbnetOp::K5E6 => Some(6),
            FbnetOp::Skip => None,
        }
    }

    /// Number of groups in the pointwise convolutions.
    pub fn groups(self) -> usize {
        match self {
            FbnetOp::K3E1G2 | FbnetOp::K5E1G2 => 2,
            _ => 1,
        }
    }

    /// Whether the block contains a depthwise convolution.
    pub fn is_depthwise(self) -> bool {
        self != FbnetOp::Skip
    }
}

impl fmt::Display for FbnetOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nb201_index_round_trip() {
        for (i, op) in Nb201Op::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
            assert_eq!(Nb201Op::from_index(i), Some(*op));
            assert_eq!(Nb201Op::from_name(op.name()), Some(*op));
        }
        assert_eq!(Nb201Op::from_index(5), None);
        assert_eq!(Nb201Op::from_name("bogus"), None);
    }

    #[test]
    fn fbnet_index_round_trip() {
        for (i, op) in FbnetOp::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
            assert_eq!(FbnetOp::from_index(i), Some(*op));
            assert_eq!(FbnetOp::from_name(op.name()), Some(*op));
        }
        assert_eq!(FbnetOp::from_index(9), None);
    }

    #[test]
    fn nb201_attributes() {
        assert_eq!(Nb201Op::NorConv3x3.kernel(), Some(3));
        assert_eq!(Nb201Op::SkipConnect.kernel(), None);
        assert_eq!(Nb201Op::None.kind(), OpKind::Zero);
        assert_eq!(Nb201Op::AvgPool3x3.kind(), OpKind::Pool);
    }

    #[test]
    fn fbnet_attributes() {
        assert_eq!(FbnetOp::K5E6.kernel(), Some(5));
        assert_eq!(FbnetOp::K5E6.expansion(), Some(6));
        assert_eq!(FbnetOp::K3E1G2.groups(), 2);
        assert!(FbnetOp::K3E1.is_depthwise());
        assert!(!FbnetOp::Skip.is_depthwise());
        assert_eq!(FbnetOp::Skip.expansion(), None);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Nb201Op::NorConv3x3.to_string(), "nor_conv_3x3");
        assert_eq!(FbnetOp::K3E1G2.to_string(), "k3_e1_g2");
    }
}
