//! Regenerates the proxy-device latency-transfer study (extension of §III-E).
fn main() {
    let harness = hwpr_experiments::Harness::new();
    let report = hwpr_experiments::exps::proxy_transfer::run(&harness);
    hwpr_experiments::write_report("proxy_transfer", &report);
}
