//! The length-prefixed binary wire protocol.
//!
//! Every message is one **frame**: a little-endian `u32` payload length
//! (capped at [`MAX_FRAME`] bytes) followed by the payload. Payloads are
//! versioned so the framing can evolve without breaking old clients.
//!
//! Request payload:
//!
//! ```text
//! u8  protocol version (= 1)
//! u8  opcode            1 = predict_scores, 2 = predict_objectives,
//!                       3 = list_models
//! u64 request id        echoed verbatim in the response
//! --- predict opcodes only ---
//! u16 model-name length   + UTF-8 bytes
//! u16 platform-name length + UTF-8 bytes
//! u16 architecture count
//! per architecture: u8 space tag (0 = NAS-Bench-201, 1 = FBNet)
//!                   + 6 or 22 op-index bytes
//! ```
//!
//! Response payload:
//!
//! ```text
//! u8  protocol version
//! u8  status            0 = ok, 1 = error, 2 = overloaded
//! u64 request id
//! --- ok bodies ---
//! scores:     u16 count + count x f64
//! objectives: u16 count + count x (f64 accuracy%, f64 latency ms)
//! models:     u16 count + per model (u16 name length + bytes,
//!                                    u32 version)
//! --- error / overloaded body ---
//! u16 message length + UTF-8 bytes
//! ```
//!
//! Architectures travel as raw op indices — 7 bytes for a NAS-Bench-201
//! cell, 23 for an FBNet chain — so a batch-64 request is ~0.5 KiB and
//! decoding is a bounds-checked table lookup per op with no heap
//! allocation beyond the caller's reused buffers. `f64` results cross
//! the wire as exact little-endian bit patterns, so a round-trip through
//! the server is bit-identical to the in-process prediction.

use hwpr_nasbench::{Architecture, FbnetOp, Nb201Op, FBNET_LAYERS, NB201_EDGES};
use std::io::{self, Read, Write};

/// Current protocol version.
pub const PROTOCOL_VERSION: u8 = 1;

/// Hard ceiling on one frame's payload size. A predict request for the
/// largest admissible batch is well under 1 MiB; anything bigger is a
/// corrupt or hostile frame and the connection is dropped.
pub const MAX_FRAME: usize = 1 << 20;

/// Largest architecture batch one request may carry (fits the `u16`
/// count field with headroom and bounds worst-case coalesce memory).
pub const MAX_REQUEST_BATCH: usize = 4096;

/// Opcode: Pareto scores.
pub const OP_PREDICT_SCORES: u8 = 1;
/// Opcode: `(accuracy %, latency ms)` objective pairs.
pub const OP_PREDICT_OBJECTIVES: u8 = 2;
/// Opcode: list the registry's models.
pub const OP_LIST_MODELS: u8 = 3;

/// Status byte: success.
pub const STATUS_OK: u8 = 0;
/// Status byte: request-level failure (message follows).
pub const STATUS_ERROR: u8 = 1;
/// Status byte: request shed by backpressure (message follows).
pub const STATUS_OVERLOADED: u8 = 2;

const SPACE_NB201: u8 = 0;
const SPACE_FBNET: u8 = 1;

/// Which prediction a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictKind {
    /// Fused Pareto scores (one `f64` per architecture).
    Scores,
    /// Denormalised `(accuracy %, latency ms)` pairs.
    Objectives,
}

impl PredictKind {
    /// The wire opcode for this prediction kind.
    pub fn opcode(self) -> u8 {
        match self {
            PredictKind::Scores => OP_PREDICT_SCORES,
            PredictKind::Objectives => OP_PREDICT_OBJECTIVES,
        }
    }
}

/// Writes one frame (length prefix + `payload`).
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one frame's payload into `buf`. Returns `Ok(false)` on a clean
/// end-of-stream at a frame boundary (the peer closed the connection).
///
/// # Errors
///
/// Fails on mid-frame end-of-stream, oversized length prefixes
/// (`> max`), and socket errors.
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>, max: usize) -> io::Result<bool> {
    let mut len_bytes = [0u8; 4];
    let mut got = 0;
    while got < len_bytes.len() {
        let n = r.read(&mut len_bytes[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(false);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-frame header",
            ));
        }
        got += n;
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max}-byte limit"),
        ));
    }
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf)?;
    Ok(true)
}

fn push_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_str(buf: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize);
    push_u16(buf, s.len() as u16);
    buf.extend_from_slice(s.as_bytes());
}

fn push_arch(buf: &mut Vec<u8>, arch: &Architecture) {
    match arch {
        Architecture::Nb201(ops) => {
            buf.push(SPACE_NB201);
            for op in ops {
                buf.push(op.index() as u8);
            }
        }
        Architecture::Fbnet(ops) => {
            buf.push(SPACE_FBNET);
            for op in ops {
                buf.push(op.index() as u8);
            }
        }
    }
}

/// Encodes a predict request payload into `buf` (cleared first).
pub fn encode_predict(
    buf: &mut Vec<u8>,
    kind: PredictKind,
    request_id: u64,
    model: &str,
    platform: &str,
    archs: &[Architecture],
) {
    debug_assert!(archs.len() <= MAX_REQUEST_BATCH);
    buf.clear();
    buf.push(PROTOCOL_VERSION);
    buf.push(kind.opcode());
    buf.extend_from_slice(&request_id.to_le_bytes());
    push_str(buf, model);
    push_str(buf, platform);
    push_u16(buf, archs.len() as u16);
    for arch in archs {
        push_arch(buf, arch);
    }
}

/// Encodes a list-models request payload into `buf` (cleared first).
pub fn encode_list_models(buf: &mut Vec<u8>, request_id: u64) {
    buf.clear();
    buf.push(PROTOCOL_VERSION);
    buf.push(OP_LIST_MODELS);
    buf.extend_from_slice(&request_id.to_le_bytes());
}

/// A decoded request header; the architectures land in the caller's
/// reused buffer.
#[derive(Debug)]
pub struct RequestHead<'a> {
    /// The request opcode (`OP_*`).
    pub opcode: u8,
    /// Client-chosen id echoed in the response.
    pub request_id: u64,
    /// Registry name of the target model (empty for list requests).
    pub model: &'a str,
    /// Platform display name (empty for list requests).
    pub platform: &'a str,
}

/// A decode failure, carrying the best-effort request id so the error
/// response can still be correlated by the client.
#[derive(Debug)]
pub struct DecodeError {
    /// Request id when the header got far enough to carry one, else 0.
    pub request_id: u64,
    /// What was wrong with the frame.
    pub message: String,
}

struct Cursor<'a> {
    data: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.data.get(self.at..self.at + n)?;
        self.at += n;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|s| u16::from_le_bytes([s[0], s[1]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    fn str(&mut self) -> Option<&'a str> {
        let len = self.u16()? as usize;
        std::str::from_utf8(self.take(len)?).ok()
    }
}

fn read_arch(c: &mut Cursor<'_>) -> std::result::Result<Architecture, String> {
    let tag = c.u8().ok_or("truncated architecture tag")?;
    match tag {
        SPACE_NB201 => {
            let bytes = c.take(NB201_EDGES).ok_or("truncated NB201 ops")?;
            let mut ops = [Nb201Op::None; NB201_EDGES];
            for (slot, &b) in ops.iter_mut().zip(bytes) {
                *slot = Nb201Op::from_index(b as usize)
                    .ok_or_else(|| format!("NB201 op index {b} out of range"))?;
            }
            Ok(Architecture::nb201(ops))
        }
        SPACE_FBNET => {
            let bytes = c.take(FBNET_LAYERS).ok_or("truncated FBNet ops")?;
            let mut ops = [FbnetOp::Skip; FBNET_LAYERS];
            for (slot, &b) in ops.iter_mut().zip(bytes) {
                *slot = FbnetOp::from_index(b as usize)
                    .ok_or_else(|| format!("FBNet op index {b} out of range"))?;
            }
            Ok(Architecture::fbnet(ops))
        }
        other => Err(format!("unknown search-space tag {other}")),
    }
}

/// Decodes a request payload; predict-opcode architectures are appended
/// to `archs` (cleared first).
///
/// # Errors
///
/// Returns a [`DecodeError`] naming the malformation, with the request
/// id when the header was intact enough to carry one.
pub fn decode_request<'a>(
    payload: &'a [u8],
    archs: &mut Vec<Architecture>,
) -> std::result::Result<RequestHead<'a>, DecodeError> {
    archs.clear();
    let mut c = Cursor {
        data: payload,
        at: 0,
    };
    let fail = |request_id: u64, message: String| DecodeError {
        request_id,
        message,
    };
    let version = c
        .u8()
        .ok_or_else(|| fail(0, "empty request payload".into()))?;
    if version != PROTOCOL_VERSION {
        return Err(fail(
            0,
            format!("unsupported protocol version {version} (expected {PROTOCOL_VERSION})"),
        ));
    }
    let opcode = c
        .u8()
        .ok_or_else(|| fail(0, "truncated request: missing opcode".into()))?;
    let request_id = c
        .u64()
        .ok_or_else(|| fail(0, "truncated request: missing request id".into()))?;
    if opcode == OP_LIST_MODELS {
        return Ok(RequestHead {
            opcode,
            request_id,
            model: "",
            platform: "",
        });
    }
    if opcode != OP_PREDICT_SCORES && opcode != OP_PREDICT_OBJECTIVES {
        return Err(fail(request_id, format!("unknown opcode {opcode}")));
    }
    let model = c
        .str()
        .ok_or_else(|| fail(request_id, "malformed model name".into()))?;
    let platform = c
        .str()
        .ok_or_else(|| fail(request_id, "malformed platform name".into()))?;
    let count = c
        .u16()
        .ok_or_else(|| fail(request_id, "truncated request: missing batch count".into()))?
        as usize;
    if count == 0 {
        return Err(fail(request_id, "empty architecture batch".into()));
    }
    if count > MAX_REQUEST_BATCH {
        return Err(fail(
            request_id,
            format!("batch of {count} exceeds the per-request limit of {MAX_REQUEST_BATCH}"),
        ));
    }
    for _ in 0..count {
        archs.push(read_arch(&mut c).map_err(|m| fail(request_id, m))?);
    }
    if c.at != payload.len() {
        return Err(fail(
            request_id,
            format!("{} trailing bytes after request body", payload.len() - c.at),
        ));
    }
    Ok(RequestHead {
        opcode,
        request_id,
        model,
        platform,
    })
}

fn begin_response(buf: &mut Vec<u8>, status: u8, request_id: u64) {
    buf.clear();
    // frame length prefix, patched in finish_frame
    buf.extend_from_slice(&[0; 4]);
    buf.push(PROTOCOL_VERSION);
    buf.push(status);
    buf.extend_from_slice(&request_id.to_le_bytes());
}

fn finish_frame(buf: &mut [u8]) {
    let payload_len = (buf.len() - 4) as u32;
    buf[..4].copy_from_slice(&payload_len.to_le_bytes());
}

/// Encodes a complete scores-response frame (length prefix included)
/// into `buf` (cleared first).
pub fn encode_scores_response(buf: &mut Vec<u8>, request_id: u64, scores: &[f64]) {
    begin_response(buf, STATUS_OK, request_id);
    push_u16(buf, scores.len() as u16);
    for s in scores {
        buf.extend_from_slice(&s.to_le_bytes());
    }
    finish_frame(buf);
}

/// Encodes a complete objectives-response frame into `buf`.
pub fn encode_objectives_response(buf: &mut Vec<u8>, request_id: u64, objectives: &[(f64, f64)]) {
    begin_response(buf, STATUS_OK, request_id);
    push_u16(buf, objectives.len() as u16);
    for (a, l) in objectives {
        buf.extend_from_slice(&a.to_le_bytes());
        buf.extend_from_slice(&l.to_le_bytes());
    }
    finish_frame(buf);
}

/// Encodes a complete model-list response frame into `buf`.
pub fn encode_list_response(buf: &mut Vec<u8>, request_id: u64, models: &[(String, u32)]) {
    begin_response(buf, STATUS_OK, request_id);
    push_u16(buf, models.len() as u16);
    for (name, version) in models {
        push_str(buf, name);
        buf.extend_from_slice(&version.to_le_bytes());
    }
    finish_frame(buf);
}

/// Encodes a complete error/overloaded response frame into `buf`.
pub fn encode_error_response(buf: &mut Vec<u8>, request_id: u64, status: u8, message: &str) {
    debug_assert!(status == STATUS_ERROR || status == STATUS_OVERLOADED);
    begin_response(buf, status, request_id);
    push_str(buf, message);
    finish_frame(buf);
}

/// A decoded response header; the body follows at `body`.
#[derive(Debug)]
pub struct ResponseHead<'a> {
    /// `STATUS_OK`, `STATUS_ERROR` or `STATUS_OVERLOADED`.
    pub status: u8,
    /// The id the request carried.
    pub request_id: u64,
    /// Status-specific body bytes.
    pub body: &'a [u8],
}

/// Splits a response payload into its header and body.
///
/// # Errors
///
/// Returns a message when the payload is truncated or version-mismatched.
pub fn decode_response_head(payload: &[u8]) -> std::result::Result<ResponseHead<'_>, String> {
    let mut c = Cursor {
        data: payload,
        at: 0,
    };
    let version = c.u8().ok_or("empty response payload")?;
    if version != PROTOCOL_VERSION {
        return Err(format!("unsupported response protocol version {version}"));
    }
    let status = c.u8().ok_or("truncated response: missing status")?;
    let request_id = c.u64().ok_or("truncated response: missing request id")?;
    Ok(ResponseHead {
        status,
        request_id,
        body: &payload[c.at..],
    })
}

/// Decodes a scores body into `out` (appended).
///
/// # Errors
///
/// Returns a message when the body length disagrees with its count.
pub fn decode_scores(body: &[u8], out: &mut Vec<f64>) -> std::result::Result<(), String> {
    let mut c = Cursor { data: body, at: 0 };
    let count = c.u16().ok_or("truncated scores body")? as usize;
    for _ in 0..count {
        let bytes = c.take(8).ok_or("truncated scores body")?;
        out.push(f64::from_le_bytes(bytes.try_into().expect("8 bytes")));
    }
    if c.at != body.len() {
        return Err("trailing bytes after scores body".into());
    }
    Ok(())
}

/// Decodes an objectives body into `out` (appended).
///
/// # Errors
///
/// Returns a message when the body length disagrees with its count.
pub fn decode_objectives(
    body: &[u8],
    out: &mut Vec<(f64, f64)>,
) -> std::result::Result<(), String> {
    let mut c = Cursor { data: body, at: 0 };
    let count = c.u16().ok_or("truncated objectives body")? as usize;
    for _ in 0..count {
        let a = c.take(8).ok_or("truncated objectives body")?;
        let l = c.take(8).ok_or("truncated objectives body")?;
        out.push((
            f64::from_le_bytes(a.try_into().expect("8 bytes")),
            f64::from_le_bytes(l.try_into().expect("8 bytes")),
        ));
    }
    if c.at != body.len() {
        return Err("trailing bytes after objectives body".into());
    }
    Ok(())
}

/// Decodes a model-list body.
///
/// # Errors
///
/// Returns a message when the body is truncated.
pub fn decode_model_list(body: &[u8]) -> std::result::Result<Vec<(String, u32)>, String> {
    let mut c = Cursor { data: body, at: 0 };
    let count = c.u16().ok_or("truncated model list")? as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let name = c.str().ok_or("truncated model name")?.to_string();
        let version = c.take(4).ok_or("truncated model version")?;
        out.push((
            name,
            u32::from_le_bytes(version.try_into().expect("4 bytes")),
        ));
    }
    Ok(out)
}

/// Decodes an error/overloaded body's message (best effort).
pub fn decode_error_message(body: &[u8]) -> String {
    let mut c = Cursor { data: body, at: 0 };
    c.str().unwrap_or("<malformed error body>").to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwpr_nasbench::SearchSpaceId;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn archs(space: SearchSpaceId, n: usize) -> Vec<Architecture> {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        (0..n)
            .map(|_| Architecture::random(space, &mut rng))
            .collect()
    }

    #[test]
    fn predict_request_round_trips_both_spaces() {
        for space in [SearchSpaceId::NasBench201, SearchSpaceId::FBNet] {
            let batch = archs(space, 9);
            let mut payload = Vec::new();
            encode_predict(
                &mut payload,
                PredictKind::Objectives,
                42,
                "default",
                "Edge GPU",
                &batch,
            );
            let mut decoded = Vec::new();
            let head = decode_request(&payload, &mut decoded).unwrap();
            assert_eq!(head.opcode, OP_PREDICT_OBJECTIVES);
            assert_eq!(head.request_id, 42);
            assert_eq!(head.model, "default");
            assert_eq!(head.platform, "Edge GPU");
            assert_eq!(decoded, batch);
        }
    }

    #[test]
    fn responses_round_trip_bit_exactly() {
        let scores = vec![0.125, -3.5e-17, f64::MIN_POSITIVE, 1.0 / 3.0];
        let mut frame = Vec::new();
        encode_scores_response(&mut frame, 7, &scores);
        let payload = &frame[4..];
        assert_eq!(
            frame.len() - 4,
            u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize
        );
        let head = decode_response_head(payload).unwrap();
        assert_eq!((head.status, head.request_id), (STATUS_OK, 7));
        let mut out = Vec::new();
        decode_scores(head.body, &mut out).unwrap();
        assert_eq!(
            out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            scores.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );

        let objectives = vec![(91.25, 3.75), (88.0, 1.0 / 7.0)];
        encode_objectives_response(&mut frame, 9, &objectives);
        let head = decode_response_head(&frame[4..]).unwrap();
        let mut out = Vec::new();
        decode_objectives(head.body, &mut out).unwrap();
        assert_eq!(out, objectives);

        encode_error_response(&mut frame, 11, STATUS_OVERLOADED, "queue full");
        let head = decode_response_head(&frame[4..]).unwrap();
        assert_eq!(head.status, STATUS_OVERLOADED);
        assert_eq!(decode_error_message(head.body), "queue full");

        let models = vec![("default".to_string(), 3u32), ("edge".to_string(), 1)];
        encode_list_response(&mut frame, 13, &models);
        let head = decode_response_head(&frame[4..]).unwrap();
        assert_eq!(decode_model_list(head.body).unwrap(), models);
    }

    #[test]
    fn malformed_requests_are_rejected_with_the_request_id() {
        let mut buf = Vec::new();
        let mut out = Vec::new();

        // junk version
        buf.clear();
        buf.push(99);
        assert!(decode_request(&buf, &mut out).is_err());

        // valid header, bad opcode
        encode_predict(
            &mut buf,
            PredictKind::Scores,
            21,
            "m",
            "p",
            &archs(SearchSpaceId::NasBench201, 1),
        );
        buf[1] = 77;
        let err = decode_request(&buf, &mut out).unwrap_err();
        assert_eq!(err.request_id, 21);
        assert!(err.message.contains("unknown opcode"));

        // op index out of range
        encode_predict(
            &mut buf,
            PredictKind::Scores,
            22,
            "m",
            "p",
            &archs(SearchSpaceId::NasBench201, 1),
        );
        let last = buf.len() - 1;
        buf[last] = 200;
        let err = decode_request(&buf, &mut out).unwrap_err();
        assert_eq!(err.request_id, 22);
        assert!(err.message.contains("out of range"));

        // zero-architecture batch
        encode_predict(&mut buf, PredictKind::Scores, 23, "m", "p", &[]);
        let err = decode_request(&buf, &mut out).unwrap_err();
        assert!(err.message.contains("empty"));

        // truncated body
        encode_predict(
            &mut buf,
            PredictKind::Scores,
            24,
            "m",
            "p",
            &archs(SearchSpaceId::NasBench201, 2),
        );
        buf.truncate(buf.len() - 3);
        assert!(decode_request(&buf, &mut out).is_err());

        // trailing garbage
        encode_predict(
            &mut buf,
            PredictKind::Scores,
            25,
            "m",
            "p",
            &archs(SearchSpaceId::NasBench201, 2),
        );
        buf.push(0);
        let err = decode_request(&buf, &mut out).unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn frames_round_trip_and_enforce_the_size_cap() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = &wire[..];
        let mut buf = Vec::new();
        assert!(read_frame(&mut r, &mut buf, MAX_FRAME).unwrap());
        assert_eq!(buf, b"hello");
        assert!(read_frame(&mut r, &mut buf, MAX_FRAME).unwrap());
        assert!(buf.is_empty());
        // clean EOF at a boundary
        assert!(!read_frame(&mut r, &mut buf, MAX_FRAME).unwrap());

        // oversized length prefix
        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        let mut r = &huge[..];
        let err = read_frame(&mut r, &mut buf, MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // mid-header EOF
        let partial = [5u8, 0];
        let mut r = &partial[..];
        let err = read_frame(&mut r, &mut buf, MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        // mid-payload EOF
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        wire.truncate(wire.len() - 2);
        let mut r = &wire[..];
        assert!(read_frame(&mut r, &mut buf, MAX_FRAME).is_err());
    }
}
