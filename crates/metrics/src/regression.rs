//! Regression error metrics.

use crate::{check_pair, Result};

/// Root mean squared error between predictions and targets.
///
/// # Errors
///
/// Returns [`crate::MetricError`] on length mismatch or fewer than two
/// samples.
///
/// # Examples
///
/// ```
/// let r = hwpr_metrics::rmse(&[1.0, 2.0], &[1.0, 4.0]).unwrap();
/// assert!((r - 2.0f64.sqrt()).abs() < 1e-6);
/// ```
pub fn rmse(pred: &[f32], target: &[f32]) -> Result<f64> {
    check_pair(pred, target)?;
    let mse = pred
        .iter()
        .zip(target)
        .map(|(&p, &t)| {
            let d = (p - t) as f64;
            d * d
        })
        .sum::<f64>()
        / pred.len() as f64;
    Ok(mse.sqrt())
}

/// Mean absolute error between predictions and targets.
///
/// # Errors
///
/// Returns [`crate::MetricError`] on length mismatch or fewer than two
/// samples.
pub fn mae(pred: &[f32], target: &[f32]) -> Result<f64> {
    check_pair(pred, target)?;
    Ok(pred
        .iter()
        .zip(target)
        .map(|(&p, &t)| ((p - t) as f64).abs())
        .sum::<f64>()
        / pred.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_is_zero() {
        let v = [1.0f32, -2.0, 3.5];
        assert_eq!(rmse(&v, &v).unwrap(), 0.0);
        assert_eq!(mae(&v, &v).unwrap(), 0.0);
    }

    #[test]
    fn known_values() {
        let p = [0.0f32, 0.0, 0.0, 0.0];
        let t = [1.0f32, 1.0, 1.0, 1.0];
        assert!((rmse(&p, &t).unwrap() - 1.0).abs() < 1e-12);
        assert!((mae(&p, &t).unwrap() - 1.0).abs() < 1e-12);
        let t2 = [2.0f32, 0.0, 0.0, 0.0];
        assert!((mae(&p, &t2).unwrap() - 0.5).abs() < 1e-12);
        assert!((rmse(&p, &t2).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mismatched_lengths_error() {
        assert!(rmse(&[1.0], &[1.0, 2.0]).is_err());
        assert!(mae(&[1.0, 2.0, 3.0], &[1.0]).is_err());
    }
}
