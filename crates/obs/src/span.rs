//! Hierarchical timed spans with explicit cross-thread propagation.
//!
//! A [`Span`] is an RAII guard: creating it emits [`Event::SpanStart`],
//! dropping it emits [`Event::SpanEnd`] with a monotonic duration.
//! Nesting is tracked per thread, so `span("a")` inside `span("b")`
//! records `b` as the parent.
//!
//! Worker threads do **not** inherit the spawning thread's current span —
//! a thread-local cannot cross a `spawn`. To keep a fan-out connected,
//! capture a [`SpanContext`] on the spawning thread ([`current_context`]
//! or [`Span::context`]) and open the worker's root with
//! [`span_with_parent`]; everything the worker nests inside that span
//! then hangs off the same trace tree. Span events also carry a small
//! dense per-thread id ([`thread_id`]) so exporters can lay spans out in
//! per-thread lanes.
//!
//! With telemetry off, every entry point here is one relaxed atomic load
//! and returns an inert guard (or [`SpanContext::NONE`]) — no clock read,
//! no allocation, no thread-local touch.

use crate::event::Event;
use std::borrow::Cow;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Process-unique span id source (0 is reserved for "no parent").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Dense per-thread lane id source (0 is reserved for "unassigned").
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Innermost open span on this thread (0 at the root).
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };

    /// This thread's lane id (0 until first assigned).
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
}

/// A small dense id for the calling thread, assigned on first use (the
/// first thread to emit — in practice the main thread — gets 1). Recorded
/// on every span event so trace exporters can render per-thread lanes.
pub fn thread_id() -> u64 {
    THREAD_ID.with(|slot| {
        let id = slot.get();
        if id != 0 {
            return id;
        }
        let id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
        slot.set(id);
        id
    })
}

/// A copyable handle to a span, safe to send across threads. Capture it
/// on the spawning thread and hand it to [`span_with_parent`] inside the
/// worker so the worker's spans join the spawning thread's trace tree
/// instead of opening orphan roots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    span: u64,
}

impl SpanContext {
    /// No enclosing span (workers opened under it become roots).
    pub const NONE: SpanContext = SpanContext { span: 0 };

    /// The referenced span id (0 when there is none).
    pub fn id(&self) -> u64 {
        self.span
    }

    /// Whether the context references no span.
    pub fn is_none(&self) -> bool {
        self.span == 0
    }
}

/// The calling thread's innermost open span as a sendable handle.
/// Returns [`SpanContext::NONE`] (after one relaxed load) when telemetry
/// is off.
pub fn current_context() -> SpanContext {
    if !crate::enabled() {
        return SpanContext::NONE;
    }
    SpanContext {
        span: CURRENT_SPAN.with(Cell::get),
    }
}

/// An open span; the region ends (and the end event is emitted) when the
/// guard drops.
#[must_use = "a span measures the region until the guard is dropped"]
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    id: u64,
    /// Parent recorded on the events (explicit context or the thread's
    /// previous current span).
    parent: u64,
    /// The thread-local current span to restore on drop. Differs from
    /// `parent` for spans opened with an explicit cross-thread context.
    prev: u64,
    name: &'static str,
    label: Option<Cow<'static, str>>,
    start: Instant,
}

/// Opens a span named `name`. Inert (and allocation-free) when telemetry
/// is off.
pub fn span(name: &'static str) -> Span {
    open(name, None, None)
}

/// Opens a span named `name` carrying a variant `label` (e.g. the panel
/// precision of an `"infer.frozen"` span). The label rides on both the
/// start and end events and is rendered as `name[label]` by the report.
/// Inert (and allocation-free) when telemetry is off.
pub fn span_labeled(name: &'static str, label: &'static str) -> Span {
    open(name, Some(Cow::Borrowed(label)), None)
}

/// [`span_labeled`] with a computed label (e.g. the island id of a
/// `"search.island"` span). The closure runs only when telemetry is on,
/// so the disabled path stays one relaxed load with no formatting and no
/// allocation.
pub fn span_labeled_with(name: &'static str, label: impl FnOnce() -> String) -> Span {
    if !crate::enabled() {
        return Span { inner: None };
    }
    open(name, Some(Cow::Owned(label())), None)
}

/// Opens a span whose parent is the explicitly supplied `parent` context
/// instead of the calling thread's current span — the cross-thread
/// propagation primitive. The new span still becomes the thread's current
/// span, so spans nested inside the worker parent correctly. Inert (and
/// allocation-free) when telemetry is off.
pub fn span_with_parent(name: &'static str, parent: SpanContext) -> Span {
    open(name, None, Some(parent))
}

/// [`span_with_parent`] with a computed label — the worker-thread variant
/// of [`span_labeled_with`]: the span joins `parent`'s trace tree and the
/// label closure runs only when telemetry is on.
pub fn span_with_parent_labeled(
    name: &'static str,
    parent: SpanContext,
    label: impl FnOnce() -> String,
) -> Span {
    if !crate::enabled() {
        return Span { inner: None };
    }
    open(name, Some(Cow::Owned(label())), Some(parent))
}

fn open(
    name: &'static str,
    label: Option<Cow<'static, str>>,
    explicit: Option<SpanContext>,
) -> Span {
    if !crate::enabled() {
        return Span { inner: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let prev = CURRENT_SPAN.with(|current| current.replace(id));
    let parent = explicit.map_or(prev, |ctx| ctx.span);
    crate::emit(Event::SpanStart {
        id,
        parent,
        name: name.to_string(),
        label: label.as_ref().map(|l| l.clone().into_owned()),
        tid: thread_id(),
        t_us: crate::now_us(),
    });
    Span {
        inner: Some(SpanInner {
            id,
            parent,
            prev,
            name,
            label,
            start: Instant::now(),
        }),
    }
}

impl Span {
    /// The span id (`None` when telemetry was off at creation).
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|inner| inner.id)
    }

    /// A sendable handle to this span for cross-thread propagation
    /// ([`SpanContext::NONE`] when telemetry was off at creation).
    pub fn context(&self) -> SpanContext {
        SpanContext {
            span: self.inner.as_ref().map_or(0, |inner| inner.id),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        CURRENT_SPAN.with(|current| current.set(inner.prev));
        crate::emit(Event::SpanEnd {
            id: inner.id,
            parent: inner.parent,
            name: inner.name.to_string(),
            label: inner.label.map(Cow::into_owned),
            tid: thread_id(),
            t_us: crate::now_us(),
            dur_us: inner.start.elapsed().as_micros() as u64,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_inert() {
        // no recorder installed in this unit-test context
        let guard = span("t.disabled");
        assert_eq!(guard.id(), None);
        assert!(guard.context().is_none());
        drop(guard);
        CURRENT_SPAN.with(|current| assert_eq!(current.get(), 0));
    }

    #[test]
    fn disabled_context_and_worker_span_are_inert() {
        let ctx = current_context();
        assert_eq!(ctx, SpanContext::NONE);
        let guard = span_with_parent("t.worker", ctx);
        assert_eq!(guard.id(), None);
        drop(guard);
        CURRENT_SPAN.with(|current| assert_eq!(current.get(), 0));
    }

    #[test]
    fn thread_ids_are_stable_per_thread_and_distinct_across_threads() {
        let mine = thread_id();
        assert!(mine > 0);
        assert_eq!(thread_id(), mine, "lane id must be sticky");
        let other = std::thread::spawn(thread_id).join().expect("worker runs");
        assert_ne!(other, mine);
        assert!(other > 0);
    }
}
