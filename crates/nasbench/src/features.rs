//! Manual Architecture Features (AF) — §III-C(1) of the paper.

use crate::arch::Architecture;
use crate::profile::profile;
use crate::Dataset;
use serde::{Deserialize, Serialize};

/// The eight manual features the paper extracts: FLOPs, parameters,
/// number of convolutions, input size, depth, first/last channel sizes
/// and number of downsampling ops.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArchFeatures {
    /// Total FLOPs of the network.
    pub flops: f64,
    /// Total trainable parameters.
    pub params: f64,
    /// Number of convolution ops.
    pub conv_count: f64,
    /// Input spatial resolution.
    pub input_size: f64,
    /// Effective depth (data-transforming ops).
    pub depth: f64,
    /// Channel width after the stem.
    pub first_channels: f64,
    /// Channel width before the classifier.
    pub last_channels: f64,
    /// Number of resolution-reducing ops.
    pub downsample_count: f64,
}

/// Dimension of the AF vector.
pub const ARCH_FEATURE_DIM: usize = 8;

impl ArchFeatures {
    /// Extracts the features of `arch` on `dataset` via the profiler.
    pub fn extract(arch: &Architecture, dataset: Dataset) -> Self {
        let p = profile(arch, dataset);
        let first_channels = p
            .ops
            .first()
            .map(|o| o.out_channels as f64)
            .unwrap_or_default();
        let last_channels = p
            .ops
            .last()
            .map(|o| o.in_channels as f64)
            .unwrap_or_default();
        Self {
            flops: p.total_flops(),
            params: p.total_params(),
            conv_count: p.conv_count() as f64,
            input_size: dataset.input_size() as f64,
            depth: p.effective_depth() as f64,
            first_channels,
            last_channels,
            downsample_count: p.downsample_count() as f64,
        }
    }

    /// The features as a raw vector (fixed order, length
    /// [`ARCH_FEATURE_DIM`]).
    pub fn to_vec(self) -> Vec<f32> {
        vec![
            self.flops as f32,
            self.params as f32,
            self.conv_count as f32,
            self.input_size as f32,
            self.depth as f32,
            self.first_channels as f32,
            self.last_channels as f32,
            self.downsample_count as f32,
        ]
    }
}

/// Per-dimension affine normaliser fit on a training set, mapping features
/// to approximately `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureNormalizer {
    mins: Vec<f32>,
    spans: Vec<f32>,
}

impl FeatureNormalizer {
    /// Fits min/max bounds over `rows`.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or ragged.
    pub fn fit(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a normalizer on no rows");
        let dim = rows[0].len();
        let mut mins = vec![f32::INFINITY; dim];
        let mut maxs = vec![f32::NEG_INFINITY; dim];
        for r in rows {
            assert_eq!(r.len(), dim, "ragged feature rows");
            for ((mn, mx), &v) in mins.iter_mut().zip(maxs.iter_mut()).zip(r) {
                *mn = mn.min(v);
                *mx = mx.max(v);
            }
        }
        let spans = mins
            .iter()
            .zip(&maxs)
            .map(|(&mn, &mx)| if mx > mn { mx - mn } else { 1.0 })
            .collect();
        Self { mins, spans }
    }

    /// Normalises one row in place semantics (returns a new vector).
    ///
    /// # Panics
    ///
    /// Panics if `row` has the wrong dimension.
    pub fn transform(&self, row: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; row.len()];
        self.transform_into(row, &mut out);
        out
    }

    /// Normalises one row into the caller's buffer (the allocation-free
    /// form of [`FeatureNormalizer::transform`], bit-identical arithmetic).
    ///
    /// # Panics
    ///
    /// Panics if `row` or `out` has the wrong dimension.
    pub fn transform_into(&self, row: &[f32], out: &mut [f32]) {
        assert_eq!(row.len(), self.mins.len(), "dimension mismatch");
        assert_eq!(out.len(), self.mins.len(), "dimension mismatch");
        for (o, (&v, (&mn, &span))) in out
            .iter_mut()
            .zip(row.iter().zip(self.mins.iter().zip(&self.spans)))
        {
            *o = (v - mn) / span;
        }
    }

    /// Normalises a batch of rows.
    pub fn transform_batch(&self, rows: &[Vec<f32>]) -> Vec<Vec<f32>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Nb201Op;
    use crate::SearchSpaceId;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn feature_vector_has_fixed_dim() {
        let arch = Architecture::nb201([Nb201Op::NorConv3x3; 6]);
        let f = ArchFeatures::extract(&arch, Dataset::Cifar10);
        assert_eq!(f.to_vec().len(), ARCH_FEATURE_DIM);
        assert!(f.flops > 0.0);
        assert_eq!(f.input_size, 32.0);
        assert_eq!(f.first_channels, 16.0);
    }

    #[test]
    fn conv_heavy_arch_has_more_convs() {
        let convs = ArchFeatures::extract(
            &Architecture::nb201([Nb201Op::NorConv3x3; 6]),
            Dataset::Cifar10,
        );
        let skips = ArchFeatures::extract(
            &Architecture::nb201([Nb201Op::SkipConnect; 6]),
            Dataset::Cifar10,
        );
        assert!(convs.conv_count > skips.conv_count);
        assert!(convs.depth > skips.depth);
    }

    #[test]
    fn normalizer_maps_to_unit_box() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let rows: Vec<Vec<f32>> = (0..20)
            .map(|_| {
                let a = Architecture::random(SearchSpaceId::NasBench201, &mut rng);
                ArchFeatures::extract(&a, Dataset::Cifar10).to_vec()
            })
            .collect();
        let norm = FeatureNormalizer::fit(&rows);
        for r in norm.transform_batch(&rows) {
            for v in r {
                assert!((-1e-6..=1.0 + 1e-6).contains(&v), "out of box: {v}");
            }
        }
    }

    #[test]
    fn normalizer_constant_dim_is_stable() {
        let rows = vec![vec![3.0, 1.0], vec![3.0, 2.0]];
        let norm = FeatureNormalizer::fit(&rows);
        let t = norm.transform(&[3.0, 1.5]);
        assert_eq!(t[0], 0.0); // constant dim maps to 0, no NaN
        assert!((t[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn normalizer_rejects_wrong_dim() {
        let norm = FeatureNormalizer::fit(&[vec![1.0], vec![2.0]]);
        let _ = norm.transform(&[1.0, 2.0]);
    }
}
