//! Offline subset of `criterion` (see `vendor/README.md`).
//!
//! Implements the group/bencher API surface the workspace's benches use,
//! measuring wall-clock time: each benchmark is calibrated so a sample
//! runs for at least ~2 ms, then `sample_size` samples are recorded and
//! mean/median ns-per-iteration are reported on stdout. When the
//! `HWPR_BENCH_JSON` environment variable names a file, all results from
//! the process are additionally written there as a JSON array — the
//! mechanism behind the repository's `BENCH_pr1.json` perf snapshots.

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

struct Entry {
    name: String,
    mean_ns: f64,
    median_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

static RESULTS: Mutex<Vec<Entry>> = Mutex::new(Vec::new());

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark name by `bench_function`.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

pub struct Bencher {
    sample_size: usize,
    /// Filled by `iter`: (ns per iteration samples, iterations per sample).
    measurements: Option<(Vec<f64>, u64)>,
}

impl Bencher {
    /// Times `routine`, batching calls so one sample spans >= ~2 ms.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut iters: u64 = 1;
        // Calibration doubles the batch until it is long enough to time
        // reliably; it also serves as warm-up.
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 22 {
                break;
            }
            iters *= 2;
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.measurements = Some((samples, iters));
    }
}

fn record(name: String, bencher: Bencher) {
    let Some((mut samples, iters)) = bencher.measurements else {
        eprintln!("warning: benchmark `{name}` never called Bencher::iter");
        return;
    };
    samples.sort_by(f64::total_cmp);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let median = samples[samples.len() / 2];
    println!(
        "bench {name:<50} {mean:>14.1} ns/iter (median {median:.1}, {} samples x {iters} iters)",
        samples.len()
    );
    RESULTS.lock().unwrap().push(Entry {
        name,
        mean_ns: mean,
        median_ns: median,
        samples: samples.len(),
        iters_per_sample: iters,
    });
}

/// Records a scalar quality metric (a hypervolume, a throughput, ...)
/// into the snapshot alongside the timing rows. The value is stored in
/// the `mean_ns`/`median_ns` columns so the JSON schema — and every tool
/// that reads it — stays uniform; diff tooling should give metric rows a
/// wide budget, since "bigger" is not "slower" for them.
pub fn record_metric(name: impl Into<String>, value: f64) {
    let name = name.into();
    println!("metric {name:<49} {value:>15.3}");
    RESULTS.lock().unwrap().push(Entry {
        name,
        mean_ns: value,
        median_ns: value,
        samples: 1,
        iters_per_sample: 1,
    });
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurements: None,
        };
        f(&mut bencher);
        record(format!("{}/{}", self.name, id.into_id()), bencher);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurements: None,
        };
        f(&mut bencher, input);
        record(format!("{}/{}", self.name, id.id), bencher);
        self
    }

    pub fn finish(self) {}
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 30,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: 30,
            measurements: None,
        };
        f(&mut bencher);
        record(id.into_id(), bencher);
        self
    }
}

/// Writes the JSON snapshot if `HWPR_BENCH_JSON` is set. Called by
/// `criterion_main!` after all groups have run.
///
/// If the file already holds a JSON array (a previous bench binary's
/// results in the same run), the new entries are appended to it, so a
/// multi-binary `cargo bench` accumulates one combined snapshot.
pub fn finalize() {
    let Ok(path) = std::env::var("HWPR_BENCH_JSON") else {
        return;
    };
    let results = RESULTS.lock().unwrap();
    // splice into an existing array by dropping its closing bracket
    let mut out = match std::fs::read_to_string(&path) {
        Ok(existing) => {
            let trimmed = existing.trim_end().trim_end_matches(']').trim_end();
            let mut head = trimmed.to_string();
            if !head.ends_with('[') {
                head.push(',');
            }
            head.push('\n');
            head
        }
        Err(_) => String::from("[\n"),
    };
    for (i, entry) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \
             \"samples\": {}, \"iters_per_sample\": {}}}",
            entry.name.replace('"', "\\\""),
            entry.mean_ns,
            entry.median_ns,
            entry.samples,
            entry.iters_per_sample,
        ));
    }
    out.push_str("\n]\n");
    if let Err(err) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {path}: {err}");
    } else {
        println!("bench results written to {path}");
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_records_results() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim_test");
        group.sample_size(3);
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("sum_n", 200), &200u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
        let results = RESULTS.lock().unwrap();
        assert!(results.iter().any(|e| e.name == "shim_test/sum"));
        assert!(results.iter().any(|e| e.name == "shim_test/sum_n/200"));
        for entry in results.iter() {
            assert!(entry.mean_ns > 0.0);
        }
    }
}
