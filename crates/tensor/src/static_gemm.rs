//! Fixed-shape GEMM kernels monomorphized for the frozen model's layer
//! dimensions (ROADMAP item 5, dfdx lineage).
//!
//! The blocked driver in [`crate::gemm`] is shaped for arbitrary
//! operands: every call walks the `jc`/`pc`/`ic` block loops, re-derives
//! panel offsets, and branches per tile on remainder rows/columns. For
//! the frozen inference engine those decisions are all decided the
//! moment the model is compiled — a surrogate's layer shapes never
//! change after `freeze()` — yet the dynamic driver re-makes them on
//! every one of the thousands of GEMMs per search generation.
//!
//! [`gemm_static`] is the same register-blocked computation with the
//! reduction depth `K` and output width `N` as const generics: the strip
//! count, each strip's live column width and the micro-kernel trip count
//! are compile-time constants, so the optimiser unrolls the strip loop,
//! folds away every remainder branch and specialises the inner FMA loop
//! per shape. Only the row count `m` stays runtime — the engine's batch
//! width is an env-tunable and the final chunk of a sweep is ragged.
//!
//! Monomorphization needs the shapes at compile time, so the kernels are
//! instantiated from a fixed registry ([`STATIC_SHAPES`]) covering the
//! `(k, n)` pairs the repo's model families produce (`ModelConfig::tiny`
//! / `::fast`, the experiments-scale preset, and the fusion head shared
//! by all of them). [`lookup`] resolves a shape to its kernel at
//! `freeze()` time; unlisted shapes (e.g. `ModelConfig::paper`'s wide
//! panels, which are GEMM-bound anyway) simply stay on the dynamic
//! driver. The registry is capped at `K <= KC` and `N <= NC`, which
//! means a packed operand is exactly one driver panel — the
//! [`crate::gemm::pack_b_full`] layout — and the static path accumulates
//! in the same `k`-order through the same micro-kernels, keeping its
//! results bit-identical to the dynamic driver (the differential tests
//! below assert equality, not tolerance).

use crate::gemm::{
    micro_kernel_direct, micro_kernel_direct_partial, micro_kernel_direct_store, KC, MR, NC, NR,
};

/// A monomorphized [`gemm_static`] instance: `(a, m, panels, c)` computes
/// the `[m, K] @ [K, N]` product into `c` (overwrite semantics).
pub type StaticKernelFn = fn(&[f32], usize, &[f32], &mut [f32]);

/// `C = A @ B` for a compile-time `[m, K] @ [K, N]` shape against a
/// single prepacked panel of `B` (the [`crate::gemm::pack_b_full`]
/// layout: `NR`-column strips, each `K` deep, zero-padded past `N`).
///
/// Same micro-kernels, same `k`-order and same store-direct condition as
/// [`crate::gemm::gemm_prepacked`], so the output is bit-identical to
/// the dynamic driver; the difference is that the strip walk and every
/// remainder decision are compile-time constants.
pub fn gemm_static<const K: usize, const N: usize>(
    a: &[f32],
    m: usize,
    panels: &[f32],
    c: &mut [f32],
) {
    const {
        assert!(K > 0 && K <= KC, "static shapes are single k-panel");
        assert!(N > 0 && N <= NC, "static shapes are single jc-panel");
    }
    let strips = N.div_ceil(NR);
    assert!(a.len() >= m * K, "A shorter than m x K");
    assert!(c.len() >= m * N, "C shorter than m x N");
    assert!(
        panels.len() >= strips * NR * K,
        "panel shorter than packed B"
    );
    let mut ir = 0;
    while ir < m {
        let live_rows = MR.min(m - ir);
        let a_tile = &a[ir * K..];
        for js in 0..strips {
            // all compile-time: the strip loop unrolls and the remainder
            // branch below folds to one side per strip
            let live_cols = NR.min(N - js * NR);
            let b_strip = &panels[js * NR * K..(js + 1) * NR * K];
            if live_rows == MR && live_cols == NR {
                let c_tile = &mut c[ir * N + js * NR..];
                micro_kernel_direct_store(K, a_tile, K, b_strip, c_tile, N);
                continue;
            }
            let mut acc = [[0.0f32; NR]; MR];
            if live_rows == MR {
                micro_kernel_direct(K, a_tile, K, b_strip, &mut acc);
            } else {
                micro_kernel_direct_partial(K, a_tile, K, live_rows, b_strip, &mut acc);
            }
            for (ii, acc_row) in acc.iter().enumerate().take(live_rows) {
                let row = (ir + ii) * N + js * NR;
                c[row..row + live_cols].copy_from_slice(&acc_row[..live_cols]);
            }
        }
        ir += MR;
    }
}

macro_rules! static_shapes {
    ($(($k:literal, $n:literal)),+ $(,)?) => {
        /// Every `(k, n)` shape with a monomorphized kernel. Exposed so
        /// the differential tests (and docs) can enumerate exactly what
        /// the frozen engine specialises.
        pub const STATIC_SHAPES: &[(usize, usize)] = &[$(($k, $n)),+];

        /// The monomorphized kernel for a `k x n` weight, or `None` when
        /// the shape is not in the registry (the caller falls back to
        /// the dynamic driver).
        pub fn lookup(k: usize, n: usize) -> Option<StaticKernelFn> {
            match (k, n) {
                $(($k, $n) => Some(gemm_static::<$k, $n> as StaticKernelFn),)+
                _ => None,
            }
        }
    };
}

// The frozen model's per-layer `(k, n)` GEMM shapes: GCN layers
// (node-features -> hidden, hidden -> hidden), LSTM gate GEMMs
// (embed + hidden -> 4·hidden, 2·hidden -> 4·hidden), MLP regressor
// stacks (encoder output + 8 arch features -> hidden -> ... -> 1) and
// the 2 -> 16 -> 16 -> 1 fusion head, for `ModelConfig::tiny`,
// `ModelConfig::fast` and the experiments-scale preset.
static_shapes! {
    // fusion head (every config)
    (2, 16), (16, 16), (16, 1),
    // ModelConfig::tiny
    (17, 16), (20, 48), (24, 16), (20, 16),
    // ModelConfig::fast (the default)
    (17, 96), (96, 96), (88, 256), (128, 256),
    (104, 64), (72, 64), (64, 32), (32, 1),
    // experiments `Scale::Fast` preset
    (17, 64), (64, 64), (68, 192), (96, 192),
    (72, 48), (56, 48), (48, 1),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm_prepacked, pack_b_full, Layout};
    use crate::matrix::Matrix;

    fn det(rows: usize, cols: usize, salt: usize) -> Matrix {
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|i| (((i * 13 + salt * 7) % 19) as f32 - 9.0) * 0.11)
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn every_registered_shape_matches_the_dynamic_driver_bitwise() {
        // remainder-free (multiples of MR) and remainder-heavy row
        // counts, including the ragged final chunks a sweep produces
        for &(k, n) in STATIC_SHAPES {
            let kernel = lookup(k, n).expect("registered shape must resolve");
            let b = det(k, n, k + n);
            let mut panels = Vec::new();
            pack_b_full(b.as_slice(), Layout::RowMajor, (k, n), &mut panels);
            for m in [1usize, 3, 5, 7, 8, 13, 16, 64, 129] {
                let a = det(m, k, m);
                let mut expect = vec![0.0f32; m * n];
                gemm_prepacked(
                    (m, n, k),
                    a.as_slice(),
                    Layout::RowMajor,
                    &panels,
                    &mut expect,
                );
                let mut got = vec![f32::NAN; m * n];
                kernel(a.as_slice(), m, &panels, &mut got);
                assert_eq!(got, expect, "{m}x{k}x{n} diverges from the dynamic driver");
            }
        }
    }

    #[test]
    fn static_kernel_overwrites_dirty_output() {
        let (k, n) = (20, 48);
        let kernel = lookup(k, n).unwrap();
        let b = det(k, n, 2);
        let mut panels = Vec::new();
        pack_b_full(b.as_slice(), Layout::RowMajor, (k, n), &mut panels);
        let a = det(9, k, 1);
        let mut dirty = vec![7.5f32; 9 * n];
        kernel(a.as_slice(), 9, &panels, &mut dirty);
        let expect = a.matmul(&b).unwrap();
        assert_eq!(dirty, expect.as_slice());
    }

    #[test]
    fn unregistered_shapes_fall_back() {
        assert!(lookup(273, 900).is_none(), "paper shapes stay dynamic");
        assert!(lookup(0, 16).is_none());
        assert!(lookup(16, 0).is_none());
    }

    #[test]
    fn registry_is_single_panel_sized() {
        for &(k, n) in STATIC_SHAPES {
            assert!(k <= KC && n <= NC, "({k}, {n}) spans multiple panels");
        }
    }
}
