//! Tape-based reverse-mode automatic differentiation over
//! [`hwpr_tensor::Matrix`].
//!
//! A [`Tape`] records a DAG of operations as they execute; calling
//! [`Tape::backward`] on a scalar loss walks the tape in reverse and
//! accumulates gradients into every node. Parameters live *outside* the
//! tape (owned by the model) and are inserted as leaves each forward pass,
//! which keeps the tape free of inter-batch state.
//!
//! The op set is exactly what the HW-PR-NAS surrogate models need:
//! dense algebra (GEMM, broadcasts), pointwise nonlinearities, column
//! slicing for LSTM gates, row gathering for embeddings, a per-sample
//! constant-adjacency graph convolution for the GCN encoder, dropout, and
//! the paper's two ranking losses (listwise ListMLE, pairwise hinge).
//!
//! # Examples
//!
//! ```
//! use hwpr_autograd::Tape;
//! use hwpr_tensor::Matrix;
//!
//! let mut tape = Tape::new();
//! let x = tape.leaf(Matrix::from_rows(&[&[1.0, 2.0]]));
//! let w = tape.leaf(Matrix::from_rows(&[&[3.0], &[4.0]]));
//! let y = tape.matmul(x, w)?;
//! let loss = tape.mean_all(y);
//! tape.backward(loss)?;
//! // d(mean(x @ w)) / dw = x^T
//! assert_eq!(tape.grad(w).unwrap().as_slice(), &[1.0, 2.0]);
//! # Ok::<(), hwpr_autograd::AutogradError>(())
//! ```

#![warn(missing_docs)]
mod error;
mod fused;
mod ops;
mod tape;
mod telemetry;

pub use error::AutogradError;
pub use fused::{
    apply_bias_act, lstm_bias_gates, lstm_pack_xh, lstm_state_update, lstm_step_frozen,
};
pub use tape::{Act, Tape, Var};

/// Convenience alias for fallible autograd operations.
pub type Result<T> = std::result::Result<T, AutogradError>;

#[cfg(test)]
pub(crate) mod check;

#[cfg(test)]
mod proptests;
