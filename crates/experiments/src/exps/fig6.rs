//! Figure 6: Pareto front approximations on CIFAR-10 across edge
//! platforms — HW-PR-NAS vs MOEA+BRP-NAS vs the optimal front, with the
//! normalised hypervolume per platform (5 runs combined, as the paper
//! does).

use crate::{
    nb201_reference_objectives, shared_reference, true_front, true_objectives, Harness,
    MarkdownTable,
};
use hwpr_hwmodel::Platform;
use hwpr_moo::MooWorkspace;
use hwpr_nasbench::{Architecture, Dataset, SearchSpaceId};
use std::fmt::Write as _;

/// Runs the experiment and returns the markdown report.
pub fn run(h: &Harness) -> String {
    let dataset = Dataset::Cifar10;
    let space = SearchSpaceId::NasBench201;
    let platforms = [
        Platform::EdgeGpu,
        Platform::EdgeTpu,
        Platform::FpgaZc706,
        Platform::Pixel3,
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Figure 6 — Pareto fronts on CIFAR-10 across edge platforms\n"
    );
    let _ = writeln!(
        out,
        "{} independent runs combined per method, scale `{:?}`.\n",
        h.scale.runs(),
        h.scale
    );
    let mut summary = MarkdownTable::new(vec![
        "Platform",
        "HW-PR-NAS normalized HV ↑",
        "MOEA+BRP-NAS normalized HV ↑",
        "HW-PR-NAS front size",
        "BRP-NAS front size",
    ]);
    for platform in platforms {
        let data = h.dataset(space, dataset, platform);
        let oracle = h.measured(dataset, platform);
        let mut hwpr_pop: Vec<Architecture> = Vec::new();
        let mut brp_pop: Vec<Architecture> = Vec::new();
        for run in 0..h.scale.runs() {
            let seed = 100 + run as u64;
            let model = h.train_hw_pr_nas(&data, seed);
            hwpr_pop.extend(
                h.run_moea_hwpr(model, platform, vec![space], seed)
                    .population,
            );
            let pair = h.train_brp_nas(&data, seed);
            brp_pop.extend(h.run_moea_pair(pair, vec![space], seed).population);
        }
        let mut truth = nb201_reference_objectives(h, dataset, platform);
        let hwpr_objs = true_objectives(&hwpr_pop, &oracle);
        let brp_objs = true_objectives(&brp_pop, &oracle);
        // fold discovered (oracle-measured) points into the best-known front
        truth.extend(hwpr_objs.iter().cloned());
        truth.extend(brp_objs.iter().cloned());
        let reference = shared_reference(&[truth.clone()]);
        let mut moo = MooWorkspace::new();
        let hv_truth = moo.hypervolume(&truth, &reference).expect("bounded");
        let hwpr_front = true_front(&hwpr_pop, &oracle);
        let brp_front = true_front(&brp_pop, &oracle);
        let hwpr_nhv = moo.hypervolume(&hwpr_front, &reference).expect("bounded") / hv_truth;
        let brp_nhv = moo.hypervolume(&brp_front, &reference).expect("bounded") / hv_truth;
        summary.row(vec![
            platform.to_string(),
            format!("{hwpr_nhv:.3}"),
            format!("{brp_nhv:.3}"),
            hwpr_front.len().to_string(),
            brp_front.len().to_string(),
        ]);
        let _ = writeln!(out, "## {platform}\n");
        for (name, front) in [("HW-PR-NAS", &hwpr_front), ("MOEA+BRP-NAS", &brp_front)] {
            let mut sorted = front.clone();
            sorted.sort_by(|a, b| a[1].total_cmp(&b[1]));
            let _ = writeln!(out, "{name} front (error %, latency ms):");
            for p in sorted.iter().take(15) {
                let _ = writeln!(out, "- {:.2}, {:.3}", p[0], p[1]);
            }
            out.push('\n');
        }
    }
    let _ = writeln!(out, "## Normalized hypervolume summary\n");
    out.push_str(&summary.render());
    let _ = writeln!(
        out,
        "\nPaper's shape: HW-PR-NAS consistently sits closer to the optimal \
         front (≈0.98 normalized HV) than the two-surrogate MOEA."
    );
    out
}
