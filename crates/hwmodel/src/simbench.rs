//! The synthetic benchmark table: the stand-in for NAS-Bench-201 /
//! HW-NAS-Bench lookups.

use crate::accuracy::AccuracyModel;
use crate::platform::Platform;
use hwpr_nasbench::profile::profile;
use hwpr_nasbench::{Architecture, Dataset, SearchSpaceId};
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration for [`SimBench::generate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimBenchConfig {
    /// Which search space to materialise.
    pub space: SearchSpaceId,
    /// Number of architectures to sample; `None` enumerates the whole
    /// space (only possible for NAS-Bench-201).
    pub sample_size: Option<usize>,
    /// Seed driving sampling and the accuracy noise.
    pub seed: u64,
}

impl Default for SimBenchConfig {
    fn default() -> Self {
        Self {
            space: SearchSpaceId::NasBench201,
            sample_size: None,
            seed: 0,
        }
    }
}

/// One benchmark row: an architecture with its accuracy on every dataset
/// and its latency/energy on every platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchEntry {
    arch: Architecture,
    /// `accuracy[dataset]` in percent, indexed by [`Dataset::ALL`] order.
    accuracy: [f64; 3],
    /// `latency_ms[dataset][platform]` in milliseconds.
    latency_ms: [[f64; 7]; 3],
    /// `energy_mj[dataset][platform]` in millijoules.
    energy_mj: [[f64; 7]; 3],
}

impl BenchEntry {
    /// The architecture this row describes.
    pub fn arch(&self) -> &Architecture {
        &self.arch
    }

    /// Accuracy in percent on `dataset`.
    pub fn accuracy(&self, dataset: Dataset) -> f64 {
        self.accuracy[dataset_index(dataset)]
    }

    /// Latency in milliseconds on `platform` with CIFAR-10 inputs.
    pub fn latency(&self, platform: Platform) -> f64 {
        self.latency_on(Dataset::Cifar10, platform)
    }

    /// Latency in milliseconds on `platform` with `dataset` inputs.
    pub fn latency_on(&self, dataset: Dataset, platform: Platform) -> f64 {
        self.latency_ms[dataset_index(dataset)][platform.index()]
    }

    /// Energy in millijoules on `platform` with `dataset` inputs.
    pub fn energy_on(&self, dataset: Dataset, platform: Platform) -> f64 {
        self.energy_mj[dataset_index(dataset)][platform.index()]
    }

    /// The two-objective vector the paper optimises: classification error
    /// (percent, minimise) and latency (ms, minimise).
    pub fn objectives(&self, dataset: Dataset, platform: Platform) -> Vec<f64> {
        vec![
            100.0 - self.accuracy(dataset),
            self.latency_on(dataset, platform),
        ]
    }

    /// The three-objective vector for the scalable variant (Fig. 9):
    /// error, latency and energy.
    pub fn objectives3(&self, dataset: Dataset, platform: Platform) -> Vec<f64> {
        vec![
            100.0 - self.accuracy(dataset),
            self.latency_on(dataset, platform),
            self.energy_on(dataset, platform),
        ]
    }
}

fn dataset_index(dataset: Dataset) -> usize {
    Dataset::ALL
        .iter()
        .position(|&d| d == dataset)
        .expect("dataset in ALL")
}

/// A fully materialised benchmark table, the substitute for the paper's
/// tabular benchmarks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimBench {
    config: SimBenchConfig,
    entries: Vec<BenchEntry>,
}

impl SimBench {
    /// Generates the table deterministically from `config`.
    ///
    /// # Panics
    ///
    /// Panics when asked to enumerate FBNet exhaustively
    /// (`sample_size: None` on a 9²²-architecture space).
    pub fn generate(config: SimBenchConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let archs: Vec<Architecture> = match (config.space, config.sample_size) {
            (SearchSpaceId::NasBench201, None) => (0..SearchSpaceId::NasBench201.size())
                .map(|i| Architecture::nb201_from_index(i).expect("index in range"))
                .collect(),
            (SearchSpaceId::NasBench201, Some(n)) => {
                let mut all: Vec<u64> = (0..SearchSpaceId::NasBench201.size()).collect();
                all.shuffle(&mut rng);
                all.truncate(n);
                all.into_iter()
                    .map(|i| Architecture::nb201_from_index(i).expect("index in range"))
                    .collect()
            }
            (SearchSpaceId::FBNet, Some(n)) => {
                let mut seen = std::collections::HashSet::with_capacity(n);
                let mut archs = Vec::with_capacity(n);
                while archs.len() < n {
                    let a = Architecture::random(SearchSpaceId::FBNet, &mut rng);
                    if seen.insert(a.index()) {
                        archs.push(a);
                    }
                }
                archs
            }
            (SearchSpaceId::FBNet, None) => {
                panic!("FBNet has 9^22 architectures; exhaustive enumeration is not possible")
            }
        };
        let model = AccuracyModel::new(config.seed ^ 0xACC0_5EED);
        let entries = archs
            .into_iter()
            .map(|arch| Self::measure(&arch, &model))
            .collect();
        Self { config, entries }
    }

    /// Measures a single architecture with the same models the table uses
    /// (the "oracle evaluation" of the search loop).
    pub fn measure(arch: &Architecture, model: &AccuracyModel) -> BenchEntry {
        let mut accuracy = [0.0; 3];
        let mut latency_ms = [[0.0; 7]; 3];
        let mut energy_mj = [[0.0; 7]; 3];
        for (di, &dataset) in Dataset::ALL.iter().enumerate() {
            accuracy[di] = model.accuracy(arch, dataset);
            let net = profile(arch, dataset);
            for platform in Platform::ALL {
                let spec = platform.spec();
                latency_ms[di][platform.index()] = spec.network_latency_ms(&net);
                energy_mj[di][platform.index()] = spec.network_energy_mj(&net);
            }
        }
        BenchEntry {
            arch: arch.clone(),
            accuracy,
            latency_ms,
            energy_mj,
        }
    }

    /// The accuracy model that generated (and can extend) this table —
    /// the "oracle" used to score search results.
    pub fn oracle_model(&self) -> AccuracyModel {
        AccuracyModel::new(self.config.seed ^ 0xACC0_5EED)
    }

    /// The configuration this table was generated from.
    pub fn config(&self) -> &SimBenchConfig {
        &self.config
    }

    /// All benchmark rows.
    pub fn entries(&self) -> &[BenchEntry] {
        &self.entries
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A deterministic subsample of row indices (for train/val/test
    /// splits of surrogate training).
    pub fn sample_indices<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.entries.len()).collect();
        idx.shuffle(rng);
        idx.truncate(n);
        idx
    }

    /// The objective vectors of every row for `(dataset, platform)`.
    pub fn objective_matrix(&self, dataset: Dataset, platform: Platform) -> Vec<Vec<f64>> {
        self.entries
            .iter()
            .map(|e| e.objectives(dataset, platform))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(space: SearchSpaceId, n: usize, seed: u64) -> SimBench {
        SimBench::generate(SimBenchConfig {
            space,
            sample_size: Some(n),
            seed,
        })
    }

    #[test]
    fn generates_requested_size() {
        let b = small(SearchSpaceId::NasBench201, 32, 1);
        assert_eq!(b.len(), 32);
        assert!(!b.is_empty());
        let b = small(SearchSpaceId::FBNet, 16, 1);
        assert_eq!(b.len(), 16);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small(SearchSpaceId::NasBench201, 16, 7);
        let b = small(SearchSpaceId::NasBench201, 16, 7);
        assert_eq!(a, b);
        let c = small(SearchSpaceId::NasBench201, 16, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn entries_have_consistent_values() {
        let b = small(SearchSpaceId::NasBench201, 8, 2);
        for e in b.entries() {
            for d in Dataset::ALL {
                assert!(e.accuracy(d) > 0.0 && e.accuracy(d) < 100.0);
                for p in Platform::ALL {
                    assert!(e.latency_on(d, p) > 0.0);
                    assert!(e.energy_on(d, p) > 0.0);
                }
            }
            let obj = e.objectives(Dataset::Cifar10, Platform::EdgeGpu);
            assert_eq!(obj.len(), 2);
            assert!((obj[0] - (100.0 - e.accuracy(Dataset::Cifar10))).abs() < 1e-12);
            assert_eq!(e.objectives3(Dataset::Cifar10, Platform::EdgeGpu).len(), 3);
        }
    }

    #[test]
    fn fbnet_samples_are_unique() {
        let b = small(SearchSpaceId::FBNet, 64, 3);
        let mut ids: Vec<u128> = b.entries().iter().map(|e| e.arch().index()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 64);
    }

    #[test]
    #[should_panic(expected = "exhaustive enumeration")]
    fn fbnet_full_enumeration_panics() {
        let _ = SimBench::generate(SimBenchConfig {
            space: SearchSpaceId::FBNet,
            sample_size: None,
            seed: 0,
        });
    }

    #[test]
    fn objective_matrix_shape() {
        let b = small(SearchSpaceId::NasBench201, 10, 4);
        let m = b.objective_matrix(Dataset::Cifar100, Platform::Pixel3);
        assert_eq!(m.len(), 10);
        assert!(m.iter().all(|row| row.len() == 2));
    }

    #[test]
    fn sample_indices_unique_and_bounded() {
        let b = small(SearchSpaceId::NasBench201, 20, 5);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let s = b.sample_indices(10, &mut rng);
        assert_eq!(s.len(), 10);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(s.iter().all(|&i| i < 20));
    }
}
