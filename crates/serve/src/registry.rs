//! The model registry: named, versioned, hot-swappable frozen engines.
//!
//! # Hot-swap memory model
//!
//! Publishing is an atomic pointer swap under a short registry lock:
//! the new [`ServedModel`] `Arc` replaces the old entry and a relaxed
//! generation counter is bumped. The **hot path never takes that lock**
//! — each connection resolves models through a [`RegistryCache`] that
//! revalidates only when one atomic generation load says the registry
//! changed — and in-flight requests keep their `Arc<ServedModel>`, so
//! batches admitted before a swap finish on the old weights while later
//! requests see the new ones. The old engine (weight panels, arenas) is
//! freed when its last in-flight `Arc` drops. The admission queue never
//! mixes the two: batch compatibility is keyed by `Arc` identity.
//!
//! [`ModelRegistry::republish_on_save`] closes the retraining loop: it
//! watches the persist layer (`hwpr_core::observe_saves`) and republishes
//! a model the moment a trainer writes it to the watched path.

use crate::ServeError;
use hwpr_core::{EncodingCache, FrozenModel, HwPrNas};
use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One published model: a name, a monotonically increasing version, and
/// the frozen engine + encoding cache the workers drive.
#[derive(Debug)]
pub struct ServedModel {
    name: String,
    version: u32,
    nas: Arc<HwPrNas>,
    frozen: Arc<FrozenModel>,
}

impl ServedModel {
    /// The registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The publish version (1 for the first publish of a name).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The underlying surrogate.
    pub fn nas(&self) -> &Arc<HwPrNas> {
        &self.nas
    }

    /// The frozen engine captured at publish time.
    pub fn frozen(&self) -> &Arc<FrozenModel> {
        &self.frozen
    }

    /// The encoding cache the engine was compiled against.
    pub fn cache(&self) -> &EncodingCache {
        self.nas.encoding_cache()
    }

    /// Resolves a platform display name (e.g. `"Edge GPU"`) to the
    /// model's latency-head slot.
    pub fn slot(&self, platform: &str) -> Option<usize> {
        self.nas
            .platforms()
            .iter()
            .position(|p| p.name() == platform)
    }
}

/// A named, versioned collection of [`ServedModel`]s.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    entries: Mutex<Vec<Arc<ServedModel>>>,
    /// Bumped on every publish; connection-local caches revalidate on
    /// one relaxed load of this instead of locking `entries`.
    generation: AtomicU64,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes (or hot-swaps) `nas` under `name`, freezing it with the
    /// model's current engine settings. Returns the new version number.
    ///
    /// In-flight requests admitted against the previous version keep
    /// their `Arc` and finish on the old weights; requests resolved
    /// after this call see the new ones.
    pub fn publish(&self, name: &str, nas: Arc<HwPrNas>) -> u32 {
        // compile (or fetch) the engine outside the registry lock: weight
        // packing is the expensive part of a publish
        let frozen = nas.frozen();
        let mut entries = self.entries.lock();
        let version = entries
            .iter()
            .find(|e| e.name == name)
            .map_or(1, |e| e.version + 1);
        let model = Arc::new(ServedModel {
            name: name.to_string(),
            version,
            nas,
            frozen,
        });
        match entries.iter_mut().find(|e| e.name == name) {
            Some(slot) => *slot = model,
            None => entries.push(model),
        }
        drop(entries);
        self.generation.fetch_add(1, Ordering::Release);
        if hwpr_obs::enabled() {
            crate::telemetry::metrics().publishes.inc();
        }
        version
    }

    /// The current entry for `name`.
    pub fn get(&self, name: &str) -> Option<Arc<ServedModel>> {
        self.entries
            .lock()
            .iter()
            .find(|e| e.name == name)
            .map(Arc::clone)
    }

    /// The publish generation (bumped on every [`Self::publish`]).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Snapshot of `(name, version)` pairs, in publish order.
    pub fn list(&self) -> Vec<(String, u32)> {
        self.entries
            .lock()
            .iter()
            .map(|e| (e.name.clone(), e.version))
            .collect()
    }

    /// Number of published names.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether nothing is published.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Watches the persist layer and republishes `name` whenever a model
    /// is saved to `path` — the hot-swap trigger for retraining loops.
    /// The watch lasts as long as the returned guard.
    ///
    /// A save that fails to load back warns through the telemetry sink
    /// and leaves the currently published version serving.
    pub fn republish_on_save(self: &Arc<Self>, name: &str, path: &Path) -> hwpr_core::SaveWatch {
        let registry = Arc::clone(self);
        let name = name.to_string();
        let watched: PathBuf = path.to_path_buf();
        hwpr_core::observe_saves(move |saved: &Path| {
            if saved != watched {
                return;
            }
            match HwPrNas::load(saved) {
                Ok(nas) => {
                    let version = registry.publish(&name, Arc::new(nas));
                    hwpr_obs::record_with("serve.republish", || {
                        vec![
                            hwpr_obs::field("model", &name),
                            hwpr_obs::field("version", version),
                        ]
                    });
                }
                Err(e) => hwpr_obs::warn(format!(
                    "serve: model saved to {} failed to load for republish \
                     (keeping the current version): {e}",
                    saved.display()
                )),
            }
        })
    }
}

/// A connection-local resolution cache over a [`ModelRegistry`].
///
/// `resolve` is one relaxed atomic load on the hit path — the registry
/// lock is taken only on the first lookup of a name and after a publish
/// bumps the generation.
#[derive(Debug, Default)]
pub struct RegistryCache {
    entries: Vec<(String, u64, Arc<ServedModel>)>,
}

impl RegistryCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves `name`, revalidating against `registry` only when its
    /// generation moved since the last lookup.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Remote`] when no model is published under
    /// `name`.
    pub fn resolve(
        &mut self,
        registry: &ModelRegistry,
        name: &str,
    ) -> Result<Arc<ServedModel>, ServeError> {
        let generation = registry.generation();
        if let Some((_, cached_gen, model)) = self.entries.iter_mut().find(|(n, _, _)| n == name) {
            if *cached_gen == generation {
                return Ok(Arc::clone(model));
            }
            // the registry moved: revalidate this name
            match registry.get(name) {
                Some(fresh) => {
                    *cached_gen = generation;
                    *model = Arc::clone(&fresh);
                    return Ok(fresh);
                }
                None => {
                    self.entries.retain(|(n, _, _)| n != name);
                    return Err(unknown_model(name));
                }
            }
        }
        match registry.get(name) {
            Some(model) => {
                self.entries
                    .push((name.to_string(), generation, Arc::clone(&model)));
                Ok(model)
            }
            None => Err(unknown_model(name)),
        }
    }
}

fn unknown_model(name: &str) -> ServeError {
    ServeError::Remote(format!("no model published under {name:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwpr_core::{ModelConfig, SurrogateDataset, TrainConfig};
    use hwpr_hwmodel::{Platform, SimBench, SimBenchConfig};
    use hwpr_nasbench::{Dataset, SearchSpaceId};

    fn tiny_model(seed: u64) -> Arc<HwPrNas> {
        let bench = SimBench::generate(SimBenchConfig {
            space: SearchSpaceId::NasBench201,
            sample_size: Some(32),
            seed,
        });
        let data =
            SurrogateDataset::from_simbench(&bench, Dataset::Cifar10, Platform::EdgeGpu).unwrap();
        let (model, _) = HwPrNas::fit(&data, &ModelConfig::tiny(), &TrainConfig::tiny()).unwrap();
        Arc::new(model)
    }

    #[test]
    fn publish_versions_and_swaps() {
        let registry = ModelRegistry::new();
        assert!(registry.is_empty());
        let v1_model = tiny_model(1);
        assert_eq!(registry.publish("default", Arc::clone(&v1_model)), 1);
        let g1 = registry.generation();
        let held = registry.get("default").unwrap();
        assert_eq!(held.version(), 1);
        assert!(held.slot("Edge GPU").is_some());
        assert!(held.slot("Abacus").is_none());

        assert_eq!(registry.publish("default", tiny_model(2)), 2);
        assert!(registry.generation() > g1);
        // the held Arc still points at v1 (in-flight semantics)...
        assert_eq!(held.version(), 1);
        assert!(Arc::ptr_eq(held.nas(), &v1_model));
        // ...while fresh lookups see v2
        assert_eq!(registry.get("default").unwrap().version(), 2);
        assert_eq!(registry.list(), vec![("default".to_string(), 2)]);
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn cache_revalidates_only_on_generation_change() {
        let registry = ModelRegistry::new();
        registry.publish("m", tiny_model(3));
        let mut cache = RegistryCache::new();
        let a = cache.resolve(&registry, "m").unwrap();
        let b = cache.resolve(&registry, "m").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(cache.resolve(&registry, "ghost").is_err());

        registry.publish("m", tiny_model(4));
        let c = cache.resolve(&registry, "m").unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "cache must pick up the hot-swap");
        assert_eq!(c.version(), 2);
    }
}
