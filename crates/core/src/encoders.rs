//! The three architecture encoders (§III-C) and their combinations.

use crate::config::ModelConfig;
use crate::data::EncodingCache;
use crate::Result;
use hwpr_autograd::Var;
use hwpr_nasbench::features::{FeatureNormalizer, ARCH_FEATURE_DIM};
use hwpr_nasbench::graph::NODE_FEATURE_DIM;
use hwpr_nasbench::{tokens, Architecture};
use hwpr_nn::layers::{Embedding, GcnLayer, LayerRng, Lstm};
use hwpr_nn::{Binder, Params};
use hwpr_tensor::Matrix;
use std::fmt;

/// Which encodings feed the predictor — the axis of the Fig. 4 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncoderChoice {
    /// Manual architecture features.
    pub af: bool,
    /// Embedded-token LSTM encoding.
    pub lstm: bool,
    /// Graph-convolution encoding.
    pub gcn: bool,
}

impl EncoderChoice {
    /// AF only.
    pub const AF: Self = Self {
        af: true,
        lstm: false,
        gcn: false,
    };
    /// LSTM only.
    pub const LSTM: Self = Self {
        af: false,
        lstm: true,
        gcn: false,
    };
    /// GCN only.
    pub const GCN: Self = Self {
        af: false,
        lstm: false,
        gcn: true,
    };
    /// LSTM + AF (the paper's latency encoder).
    pub const LSTM_AF: Self = Self {
        af: true,
        lstm: true,
        gcn: false,
    };
    /// GCN + AF (the paper's accuracy encoder).
    pub const GCN_AF: Self = Self {
        af: true,
        lstm: false,
        gcn: true,
    };
    /// All three concatenated (the scalable variant of §III-F).
    pub const ALL: Self = Self {
        af: true,
        lstm: true,
        gcn: true,
    };

    /// The five combinations studied in Fig. 4, in display order.
    pub const FIG4_VARIANTS: [EncoderChoice; 5] =
        [Self::AF, Self::LSTM, Self::GCN, Self::LSTM_AF, Self::GCN_AF];
}

impl fmt::Display for EncoderChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.gcn {
            parts.push("GCN");
        }
        if self.lstm {
            parts.push("LSTM");
        }
        if self.af {
            parts.push("AF");
        }
        if parts.is_empty() {
            parts.push("none");
        }
        write!(f, "{}", parts.join("+"))
    }
}

/// A concrete encoder stack: any combination of AF, LSTM and GCN whose
/// outputs are concatenated into one representation vector.
#[derive(Debug)]
pub struct EncoderSet {
    choice: EncoderChoice,
    embedding: Option<Embedding>,
    lstm: Option<Lstm>,
    gcn: Vec<GcnLayer>,
    af_normalizer: Option<FeatureNormalizer>,
    output_dim: usize,
}

impl EncoderSet {
    /// Registers the encoder parameters in `params`. The AF normaliser is
    /// fit on `train_archs` (through `cache`) so feature scales match the
    /// training distribution.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::Data`] if AF is requested with no
    /// training architectures to fit the normaliser.
    pub fn new(
        params: &mut Params,
        name: &str,
        config: &ModelConfig,
        choice: EncoderChoice,
        cache: &EncodingCache,
        train_archs: &[Architecture],
    ) -> Result<Self> {
        let mut output_dim = 0;
        let (embedding, lstm) = if choice.lstm {
            let embedding = Embedding::new(
                params,
                &format!("{name}.embed"),
                tokens::VOCAB_SIZE,
                config.embed_dim,
                config.seed,
            );
            let lstm = Lstm::new(
                params,
                &format!("{name}.lstm"),
                config.embed_dim,
                config.lstm_hidden,
                config.lstm_layers,
                config.seed.wrapping_add(1),
            );
            output_dim += config.lstm_hidden;
            (Some(embedding), Some(lstm))
        } else {
            (None, None)
        };
        let gcn = if choice.gcn {
            let mut layers = Vec::with_capacity(config.gcn_layers);
            let mut in_dim = NODE_FEATURE_DIM;
            for l in 0..config.gcn_layers {
                layers.push(GcnLayer::new(
                    params,
                    &format!("{name}.gcn{l}"),
                    in_dim,
                    config.gcn_hidden,
                    config.seed.wrapping_add(10 + l as u64),
                ));
                in_dim = config.gcn_hidden;
            }
            output_dim += config.gcn_hidden;
            layers
        } else {
            Vec::new()
        };
        let af_normalizer = if choice.af {
            if train_archs.is_empty() {
                return Err(crate::CoreError::Data(
                    "AF encoder needs training architectures to fit its normaliser".into(),
                ));
            }
            let rows: Vec<Vec<f32>> = train_archs
                .iter()
                .map(|a| cache.encoding(a).af.clone())
                .collect();
            output_dim += ARCH_FEATURE_DIM;
            Some(FeatureNormalizer::fit(&rows))
        } else {
            None
        };
        Ok(Self {
            choice,
            embedding,
            lstm,
            gcn,
            af_normalizer,
            output_dim,
        })
    }

    /// The combination this stack implements.
    pub fn choice(&self) -> EncoderChoice {
        self.choice
    }

    /// The fitted AF normaliser, when the AF encoder is active.
    pub fn normalizer(&self) -> Option<&FeatureNormalizer> {
        self.af_normalizer.as_ref()
    }

    /// Replaces the AF normaliser (used when restoring a saved model).
    pub fn set_normalizer(&mut self, normalizer: FeatureNormalizer) {
        self.af_normalizer = Some(normalizer);
    }

    /// Width of the concatenated representation.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// The token embedding, when the LSTM encoder is active (used by the
    /// frozen compile pass).
    pub(crate) fn embedding(&self) -> Option<&Embedding> {
        self.embedding.as_ref()
    }

    /// The LSTM, when active (used by the frozen compile pass).
    pub(crate) fn lstm(&self) -> Option<&Lstm> {
        self.lstm.as_ref()
    }

    /// The GCN stack (empty when the GCN encoder is inactive; used by the
    /// frozen compile pass).
    pub(crate) fn gcn_layers(&self) -> &[GcnLayer] {
        &self.gcn
    }

    /// Encodes a batch of architectures into a `[batch, output_dim]` node.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors; panics never (shapes are fixed by
    /// the cache configuration).
    pub fn forward(
        &self,
        binder: &mut Binder<'_, '_>,
        cache: &EncodingCache,
        archs: &[Architecture],
        rng: &mut LayerRng,
    ) -> Result<Var> {
        let _ = rng; // encoders are deterministic; rng kept for symmetry
        let batch = archs.len();
        let encodings: Vec<_> = archs.iter().map(|a| cache.encoding(a)).collect();
        let mut parts: Vec<Var> = Vec::new();
        if !self.gcn.is_empty() {
            let nodes = cache.nodes();
            let feature_rows: Vec<&Matrix> = encodings.iter().map(|e| &e.graph.features).collect();
            let stacked = Matrix::concat_rows(&feature_rows)
                .map_err(hwpr_autograd::AutogradError::from)
                .map_err(hwpr_nn::NnError::from)?;
            // shared references into the cache: the layer copies them into
            // pooled tape storage itself, so no deep clones here
            let adjacency: Vec<&Matrix> = encodings.iter().map(|e| &e.graph.adjacency).collect();
            let mut h = binder.input(stacked);
            for layer in &self.gcn {
                h = layer.forward(binder, h, &adjacency, nodes)?;
            }
            // read out each sample's global node
            let rows: Vec<usize> = encodings
                .iter()
                .enumerate()
                .map(|(b, e)| b * nodes + e.graph.global_node())
                .collect();
            let pooled = binder
                .tape()
                .gather_rows(h, &rows)
                .map_err(hwpr_nn::NnError::from)?;
            parts.push(pooled);
        }
        if let (Some(embedding), Some(lstm)) = (&self.embedding, &self.lstm) {
            let seq_len = cache.seq_len();
            // pooled step list + one id staging buffer reused per timestep
            let mut steps = binder.tape().scratch_vars();
            let mut ids: Vec<usize> = Vec::with_capacity(batch);
            for t in 0..seq_len {
                ids.clear();
                ids.extend(encodings.iter().map(|e| e.tokens[t]));
                steps.push(embedding.forward(binder, &ids)?);
            }
            parts.push(lstm.forward(binder, &steps)?);
            binder.tape().recycle_vars(steps);
        }
        if let Some(norm) = &self.af_normalizer {
            let mut data = Vec::with_capacity(batch * ARCH_FEATURE_DIM);
            for e in &encodings {
                data.extend(norm.transform(&e.af));
            }
            let af = Matrix::from_vec(batch, ARCH_FEATURE_DIM, data)
                .expect("AF batch shape is consistent");
            parts.push(binder.input(af));
        }
        if parts.len() == 1 {
            return Ok(parts[0]);
        }
        Ok(binder
            .tape()
            .concat_cols(&parts)
            .map_err(hwpr_nn::NnError::from)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwpr_autograd::Tape;
    use hwpr_nasbench::{Dataset, SearchSpaceId};
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(choice: EncoderChoice) -> (Params, EncoderSet, EncodingCache, Vec<Architecture>) {
        let cache = EncodingCache::for_space(SearchSpaceId::NasBench201, Dataset::Cifar10);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let archs: Vec<Architecture> = (0..8)
            .map(|_| Architecture::random(SearchSpaceId::NasBench201, &mut rng))
            .collect();
        let mut params = Params::new();
        let enc = EncoderSet::new(
            &mut params,
            "enc",
            &ModelConfig::tiny(),
            choice,
            &cache,
            &archs,
        )
        .unwrap();
        (params, enc, cache, archs)
    }

    fn run(choice: EncoderChoice) -> (usize, usize) {
        let (params, enc, cache, archs) = setup(choice);
        let mut tape = Tape::new();
        let mut binder = Binder::new(&mut tape, &params);
        let mut rng = LayerRng::seed_from_u64(0);
        let out = enc.forward(&mut binder, &cache, &archs, &mut rng).unwrap();
        let shape = tape.value(out).shape();
        assert_eq!(shape.1, enc.output_dim());
        shape
    }

    #[test]
    fn af_only_outputs_features() {
        let (rows, cols) = run(EncoderChoice::AF);
        assert_eq!((rows, cols), (8, ARCH_FEATURE_DIM));
    }

    #[test]
    fn lstm_only_outputs_hidden() {
        let cfg = ModelConfig::tiny();
        let (rows, cols) = run(EncoderChoice::LSTM);
        assert_eq!((rows, cols), (8, cfg.lstm_hidden));
    }

    #[test]
    fn gcn_only_outputs_hidden() {
        let cfg = ModelConfig::tiny();
        let (rows, cols) = run(EncoderChoice::GCN);
        assert_eq!((rows, cols), (8, cfg.gcn_hidden));
    }

    #[test]
    fn combos_concatenate() {
        let cfg = ModelConfig::tiny();
        let (_, cols) = run(EncoderChoice::GCN_AF);
        assert_eq!(cols, cfg.gcn_hidden + ARCH_FEATURE_DIM);
        let (_, cols) = run(EncoderChoice::LSTM_AF);
        assert_eq!(cols, cfg.lstm_hidden + ARCH_FEATURE_DIM);
        let (_, cols) = run(EncoderChoice::ALL);
        assert_eq!(cols, cfg.gcn_hidden + cfg.lstm_hidden + ARCH_FEATURE_DIM);
    }

    #[test]
    fn af_without_training_archs_errors() {
        let cache = EncodingCache::for_space(SearchSpaceId::NasBench201, Dataset::Cifar10);
        let mut params = Params::new();
        assert!(EncoderSet::new(
            &mut params,
            "enc",
            &ModelConfig::tiny(),
            EncoderChoice::AF,
            &cache,
            &[],
        )
        .is_err());
    }

    #[test]
    fn distinct_archs_encode_differently() {
        let (params, enc, cache, _) = setup(EncoderChoice::ALL);
        let a = Architecture::nb201_from_index(0).unwrap();
        let b = Architecture::nb201_from_index(15_624).unwrap();
        let mut tape = Tape::new();
        let mut binder = Binder::new(&mut tape, &params);
        let mut rng = LayerRng::seed_from_u64(0);
        let out = enc.forward(&mut binder, &cache, &[a, b], &mut rng).unwrap();
        let v = tape.value(out);
        assert_ne!(v.row(0), v.row(1));
    }

    #[test]
    fn display_labels() {
        assert_eq!(EncoderChoice::AF.to_string(), "AF");
        assert_eq!(EncoderChoice::GCN_AF.to_string(), "GCN+AF");
        assert_eq!(EncoderChoice::LSTM_AF.to_string(), "LSTM+AF");
        assert_eq!(EncoderChoice::ALL.to_string(), "GCN+LSTM+AF");
        assert_eq!(EncoderChoice::FIG4_VARIANTS.len(), 5);
    }

    #[test]
    fn gradients_flow_through_encoders() {
        let (params, enc, cache, archs) = setup(EncoderChoice::ALL);
        let mut tape = Tape::new();
        let mut binder = Binder::for_training(&mut tape, &params);
        let mut rng = LayerRng::seed_from_u64(1);
        let out = enc.forward(&mut binder, &cache, &archs, &mut rng).unwrap();
        let loss = binder.tape().mean_all(out);
        let grads = binder.finish(loss).unwrap();
        let live = grads.iter().filter(|g| g.is_some()).count();
        // embedding + lstm (1 layer x 3) + 2 gcn layers x 2 params
        assert!(live >= 7, "only {live} parameters got gradients");
    }
}
