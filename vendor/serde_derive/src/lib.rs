//! Offline `#[derive(Serialize, Deserialize)]` for the serde shim (see
//! `vendor/README.md`). The macros hand-parse the item's token stream —
//! no `syn`/`quote` — which is enough because only field and variant
//! *names* matter: the generated impls defer all typing to trait
//! resolution against the `serde` shim's `Value` data model.
//!
//! Supported shapes (everything this workspace derives):
//! - non-generic structs with named fields
//! - non-generic enums with unit, tuple, and struct variants
//!
//! The encoding matches serde's external tagging: structs and struct
//! variants become objects, unit variants become strings, tuple variants
//! become `{"Variant": value}` (single field) or `{"Variant": [..]}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---- item model ------------------------------------------------------------

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---- token-stream parsing --------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let token = self.tokens.get(self.pos).cloned();
        if token.is_some() {
            self.pos += 1;
        }
        token
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skips any number of `#[...]` attributes and a `pub`/`pub(...)`
    /// visibility prefix.
    fn skip_attrs_and_vis(&mut self) {
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.pos += 1;
                    match self.peek() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                            self.pos += 1;
                        }
                        _ => panic!("expected [...] after # in attribute"),
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    self.pos += 1;
                    if let Some(TokenTree::Group(g)) = self.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            self.pos += 1;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected {what}, found {other:?}"),
        }
    }

    /// Consumes tokens up to (and including) the next comma at angle-bracket
    /// depth zero. Groups hide their commas, so only `<`/`>` need tracking.
    fn skip_until_top_level_comma(&mut self) {
        let mut angle_depth: i32 = 0;
        while let Some(token) = self.next() {
            if let TokenTree::Punct(p) = &token {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => return,
                    _ => {}
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut cursor = Cursor::new(input);
    cursor.skip_attrs_and_vis();
    let keyword = cursor.expect_ident("`struct` or `enum`");
    let name = cursor.expect_ident("item name");
    if matches!(cursor.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic type `{name}`");
    }
    let body = match cursor.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde shim derive requires a braced {keyword} body for `{name}`, found {other:?}"
        ),
    };
    match keyword.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("cannot derive serde traits for `{other}`"),
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut cursor = Cursor::new(body);
    let mut fields = Vec::new();
    while !cursor.at_end() {
        cursor.skip_attrs_and_vis();
        if cursor.at_end() {
            break;
        }
        let field = cursor.expect_ident("field name");
        match cursor.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{field}`, found {other:?}"),
        }
        cursor.skip_until_top_level_comma();
        fields.push(field);
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut cursor = Cursor::new(body);
    let mut variants = Vec::new();
    while !cursor.at_end() {
        cursor.skip_attrs_and_vis();
        if cursor.at_end() {
            break;
        }
        let name = cursor.expect_ident("variant name");
        let shape = match cursor.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                cursor.pos += 1;
                VariantShape::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(g.stream());
                cursor.pos += 1;
                VariantShape::Tuple(count)
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        if matches!(cursor.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            cursor.skip_until_top_level_comma();
        } else if matches!(cursor.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            cursor.pos += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut cursor = Cursor::new(body);
    if cursor.at_end() {
        return 0;
    }
    let mut count = 1;
    while !cursor.at_end() {
        let before = cursor.pos;
        cursor.skip_until_top_level_comma();
        if cursor.pos == before {
            break;
        }
        if !cursor.at_end() {
            count += 1;
        }
    }
    count
}

// ---- code generation -------------------------------------------------------

fn push_object_fields(out: &mut String, fields: &[String], access_prefix: &str) {
    out.push_str("{ let mut fields = ::std::vec::Vec::new();");
    for field in fields {
        let _ = write!(
            out,
            " fields.push((::std::string::String::from(\"{field}\"), \
             ::serde::Serialize::serialize_value({access_prefix}{field})));"
        );
    }
    out.push_str(" ::serde::Value::Object(fields) }");
}

fn tuple_bindings(count: usize) -> Vec<String> {
    (0..count).map(|i| format!("f{i}")).collect()
}

fn render_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            let _ = write!(
                out,
                "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
                 fn serialize_value(&self) -> ::serde::Value "
            );
            push_object_fields(&mut out, fields, "&self.");
            out.push_str(" }");
        }
        Item::Enum { name, variants } => {
            let _ = write!(
                out,
                "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
                 fn serialize_value(&self) -> ::serde::Value {{ match self {{"
            );
            for variant in variants {
                let vname = &variant.name;
                match &variant.shape {
                    VariantShape::Unit => {
                        let _ = write!(
                            out,
                            " {name}::{vname} => ::serde::Value::String(\
                             ::std::string::String::from(\"{vname}\")),"
                        );
                    }
                    VariantShape::Tuple(count) => {
                        let binds = tuple_bindings(*count).join(", ");
                        let inner = if *count == 1 {
                            "::serde::Serialize::serialize_value(f0)".to_string()
                        } else {
                            let parts: Vec<String> = tuple_bindings(*count)
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", parts.join(", "))
                        };
                        let _ = write!(
                            out,
                            " {name}::{vname}({binds}) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), {inner})]),"
                        );
                    }
                    VariantShape::Struct(fields) => {
                        let binds = fields.join(", ");
                        let _ = write!(out, " {name}::{vname} {{ {binds} }} => {{ let inner = ");
                        push_object_fields(&mut out, fields, "");
                        let _ = write!(
                            out,
                            "; ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), inner)]) }},"
                        );
                    }
                }
            }
            out.push_str(" } } }");
        }
    }
    out
}

fn render_struct_constructor(out: &mut String, path: &str, fields: &[String], obj_expr: &str) {
    let _ = write!(
        out,
        "{{ let obj = {obj_expr}.as_object().ok_or_else(|| \
         ::serde::Error::custom(\"expected object for {path}\"))?; \
         ::std::result::Result::Ok({path} {{"
    );
    for field in fields {
        let _ = write!(
            out,
            " {field}: ::serde::Deserialize::deserialize_value(\
             ::serde::get_field(obj, \"{field}\", \"{path}\")?)?,"
        );
    }
    out.push_str(" }) }");
}

fn render_deserialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            let _ = write!(
                out,
                "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
                 fn deserialize_value(value: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> "
            );
            render_struct_constructor(&mut out, name, fields, "value");
            out.push_str(" }");
        }
        Item::Enum { name, variants } => {
            let _ = write!(
                out,
                "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
                 fn deserialize_value(value: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{ match value {{"
            );
            let unit: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .collect();
            let payload: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.shape, VariantShape::Unit))
                .collect();
            if !unit.is_empty() {
                out.push_str(" ::serde::Value::String(tag) => match tag.as_str() {");
                for variant in &unit {
                    let vname = &variant.name;
                    let _ = write!(
                        out,
                        " \"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                    );
                }
                let _ = write!(
                    out,
                    " other => ::std::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"unknown variant `{{other}}` for {name}\"))), }},"
                );
            }
            if !payload.is_empty() {
                out.push_str(
                    " ::serde::Value::Object(pairs) if pairs.len() == 1 => {\
                     let tag = pairs[0].0.as_str(); let inner = &pairs[0].1; match tag {",
                );
                for variant in &payload {
                    let vname = &variant.name;
                    match &variant.shape {
                        VariantShape::Unit => unreachable!(),
                        VariantShape::Tuple(count) if *count == 1 => {
                            let _ = write!(
                                out,
                                " \"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                                 ::serde::Deserialize::deserialize_value(inner)?)),"
                            );
                        }
                        VariantShape::Tuple(count) => {
                            let parts: Vec<String> = (0..*count)
                                .map(|i| {
                                    format!("::serde::Deserialize::deserialize_value(&items[{i}])?")
                                })
                                .collect();
                            let _ = write!(
                                out,
                                " \"{vname}\" => {{ let items = inner.as_array().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected array for {name}::{vname}\"))?; \
                                 if items.len() != {count} {{ return ::std::result::Result::Err(\
                                 ::serde::Error::custom(\"wrong tuple arity for {name}::{vname}\")); }} \
                                 ::std::result::Result::Ok({name}::{vname}({parts})) }},",
                                parts = parts.join(", ")
                            );
                        }
                        VariantShape::Struct(fields) => {
                            let _ = write!(out, " \"{vname}\" => ");
                            render_struct_constructor(
                                &mut out,
                                &format!("{name}::{vname}"),
                                fields,
                                "inner",
                            );
                            out.push(',');
                        }
                    }
                }
                let _ = write!(
                    out,
                    " other => ::std::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"unknown variant `{{other}}` for {name}\"))), }} }},"
                );
            }
            let _ = write!(
                out,
                " other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unexpected {{}} for enum {name}\", other.kind()))), }} }} }}"
            );
        }
    }
    out
}
