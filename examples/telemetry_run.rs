//! End-to-end telemetry demo: train the surrogate and run the MOEA with
//! the JSONL recorder installed, then render the run record with the
//! report renderer (the same one behind `hwpr-report`) and export the
//! span tree plus a Chrome Trace file (open it in https://ui.perfetto.dev).
//!
//! ```text
//! cargo run --release --example telemetry_run
//! HWPR_TELEMETRY=jsonl:/tmp/run.jsonl cargo run --release --example telemetry_run
//! ```
//!
//! Without `HWPR_TELEMETRY` the run records to `telemetry_run.jsonl` in
//! the current directory; the Chrome trace lands next to the JSONL with a
//! `.trace.json` suffix.

use hw_pr_nas::core::{HwPrNas, ModelConfig, SurrogateDataset, TrainConfig};
use hw_pr_nas::hwmodel::{Platform, SimBench, SimBenchConfig};
use hw_pr_nas::nasbench::{Dataset, SearchSpaceId};
use hw_pr_nas::obs::config::{TelemetrySpec, TELEMETRY_ENV};
use hw_pr_nas::search::{HwPrNasEvaluator, Moea, MoeaConfig, ScoreCache};
use std::path::PathBuf;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Wire telemetry: honour HWPR_TELEMETRY, defaulting to a JSONL
    //    file next to the working directory so the demo always records.
    let spec = match std::env::var(TELEMETRY_ENV) {
        Ok(value) => TelemetrySpec::parse(&value)?,
        Err(_) => TelemetrySpec::Jsonl(PathBuf::from("telemetry_run.jsonl")),
    };
    // best-effort wiring: an unwritable path degrades to a warning and a
    // plain (unrecorded) run instead of killing the demo
    spec.install_or_warn();
    if let TelemetrySpec::Jsonl(path) = &spec {
        println!("recording telemetry to {}", path.display());
    }

    // 2. Train the surrogate: each epoch emits a `train.epoch` record
    //    with loss, learning rate and both rank correlations.
    let bench = SimBench::generate(SimBenchConfig {
        space: SearchSpaceId::NasBench201,
        sample_size: Some(128),
        seed: 7,
    });
    let platform = Platform::EdgeGpu;
    let data = SurrogateDataset::from_simbench(&bench, Dataset::Cifar10, platform)?;
    println!("training HW-PR-NAS on {} architectures ...", data.len());
    let (model, report) = HwPrNas::fit(&data, &ModelConfig::fast(), &TrainConfig::fast())?;
    println!(
        "trained in {} epochs; validation rank tau = {:.3}",
        report.epochs_run, report.val_rank_tau
    );

    // 3. Search: each generation emits `search.generation` (hypervolume,
    //    front size, cache hit rate) and a `search.front` point snapshot.
    let cache = Arc::new(ScoreCache::new());
    let mut evaluator = HwPrNasEvaluator::new(Arc::new(model), platform)
        .with_threads(2)
        .with_shared_cache(Arc::clone(&cache));
    let moea = Moea::new(MoeaConfig {
        population: 24,
        generations: 8,
        record_populations: true,
        ..MoeaConfig::small(SearchSpaceId::NasBench201)
    })?;
    let result = moea.run(&mut evaluator)?;
    println!(
        "search finished: {} evaluations ({} surrogate calls, cache hit rate {:.1} %)",
        result.evaluations,
        result.surrogate_calls,
        100.0 * cache.hits() as f64 / (cache.hits() + cache.misses()).max(1) as f64
    );

    // 4. Close the run record: the final registry snapshot carries the
    //    closing counter / gauge / histogram totals.
    hw_pr_nas::obs::metrics::registry().emit();
    hw_pr_nas::obs::shutdown();

    // 5. Render the record the way `hwpr-report` would: the summary
    //    tables, the self-time span tree, and a Perfetto-openable Chrome
    //    trace next to the JSONL.
    if let TelemetrySpec::Jsonl(path) = &spec {
        let text = std::fs::read_to_string(path)?;
        let events = hw_pr_nas::obs::report::parse_jsonl(&text)?;
        println!("\n{}", hw_pr_nas::obs::report::summarize(&events));
        println!("{}", hw_pr_nas::obs::trace::span_tree(&events));
        let trace_path = path.with_extension("trace.json");
        std::fs::write(&trace_path, hw_pr_nas::obs::trace::chrome_trace(&events))?;
        let stats = hw_pr_nas::obs::trace::stats(&events);
        println!(
            "chrome trace written to {} ({} spans, {} roots, {} orphans, {} thread lanes) \
             — open in https://ui.perfetto.dev",
            trace_path.display(),
            stats.spans,
            stats.roots,
            stats.orphans,
            stats.threads
        );
    }
    Ok(())
}
