//! Dense, row-major `f32` matrix substrate for the HW-PR-NAS reproduction.
//!
//! The surrogate models in the paper (MLPs, a 2-layer LSTM with 225 hidden
//! units, a 2-layer GCN with 600 hidden units) are small enough that a
//! cache-friendly, dependency-free matrix library is sufficient to train
//! them on a CPU. This crate provides the storage type ([`Matrix`]), shape
//! checking ([`ShapeError`]), seeded random initialisation and the handful
//! of kernels the autograd tape needs (GEMM, element-wise maps, reductions,
//! row gathers, block-diagonal graph products).
//!
//! # Examples
//!
//! ```
//! use hwpr_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c, a);
//! # Ok::<(), hwpr_tensor::ShapeError>(())
//! ```


#![warn(missing_docs)]
mod init;
mod matrix;
mod ops;
mod shape;

pub use init::{he_std, xavier_std, Init};
pub use matrix::Matrix;
pub use shape::ShapeError;

/// Convenience alias for fallible matrix operations.
pub type Result<T> = std::result::Result<T, ShapeError>;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn small_matrix() -> impl Strategy<Value = Matrix> {
        (1usize..6, 1usize..6).prop_flat_map(|(r, c)| {
            proptest::collection::vec(-10.0f32..10.0, r * c)
                .prop_map(move |v| Matrix::from_vec(r, c, v).unwrap())
        })
    }

    proptest! {
        #[test]
        fn transpose_involution(m in small_matrix()) {
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn add_commutes(m in small_matrix()) {
            let n = m.map(|x| x * 0.5 + 1.0);
            prop_assert_eq!(m.add(&n).unwrap(), n.add(&m).unwrap());
        }

        #[test]
        fn matmul_identity(m in small_matrix()) {
            let id = Matrix::identity(m.cols());
            let out = m.matmul(&id).unwrap();
            for (a, b) in out.as_slice().iter().zip(m.as_slice()) {
                prop_assert!((a - b).abs() < 1e-5);
            }
        }

        #[test]
        fn sum_matches_mean(m in small_matrix()) {
            let n = (m.rows() * m.cols()) as f32;
            prop_assert!((m.sum() - m.mean() * n).abs() < 1e-3);
        }

        #[test]
        fn matmul_distributes_over_add(a in small_matrix()) {
            let b = a.map(|x| x + 1.0);
            let c = Matrix::filled(a.cols(), 3, 0.5);
            let lhs = a.add(&b).unwrap().matmul(&c).unwrap();
            let rhs = a.matmul(&c).unwrap().add(&b.matmul(&c).unwrap()).unwrap();
            for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }
    }
}
