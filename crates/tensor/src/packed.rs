//! Pre-packed GEMM operands.
//!
//! The blocked driver in [`crate::gemm`] packs its `B` operand into
//! cache-friendly panels on every call. When the same `B` feeds several
//! GEMMs before it changes — an LSTM weight multiplied once per sequence
//! step, forward and backward — that packing is pure repeated work.
//! [`PackedWeight`] materialises the packed panels once; the
//! `matmul_prepacked*` entry points then consume them directly.
//!
//! Packing order matches the driver exactly, so prepacked products are
//! bit-identical to their unpacked counterparts. The backing buffer is
//! reused across [`PackedWeight::pack`] calls (capacity is retained),
//! keeping repacking allocation-free in steady state.

use crate::gemm::{self, Layout};
use crate::matrix::Matrix;
use crate::shape::ShapeError;
use crate::Result;

/// A `k x n` GEMM `B` operand packed into the driver's panel layout.
#[derive(Debug, Default)]
pub struct PackedWeight {
    k: usize,
    n: usize,
    data: Vec<f32>,
}

impl PackedWeight {
    /// An empty pack; fill it with [`PackedWeight::pack`] or
    /// [`PackedWeight::pack_transposed`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Packs `b` as the `B` operand of `A @ B`.
    pub fn pack(&mut self, b: &Matrix) {
        let (k, n) = b.shape();
        self.k = k;
        self.n = n;
        gemm::pack_b_full(b.as_slice(), Layout::RowMajor, (k, n), &mut self.data);
    }

    /// Packs `b`'s transpose as the `B` operand of `A @ B^T` — the
    /// prepacked counterpart of [`Matrix::matmul_nt_into`]'s `rhs`.
    pub fn pack_transposed(&mut self, b: &Matrix) {
        let (n, k) = b.shape();
        self.k = k;
        self.n = n;
        gemm::pack_b_full(b.as_slice(), Layout::Transposed, (k, n), &mut self.data);
    }

    /// Logical shape `(k, n)` of the packed operand.
    pub fn shape(&self) -> (usize, usize) {
        (self.k, self.n)
    }
}

impl Matrix {
    /// Matrix product `self @ b` against a pre-packed `b`, written into
    /// `out` (overwritten; no zeroing required beforehand). Bit-identical
    /// to [`Matrix::matmul_into`] with the unpacked operand.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `self.cols() != b.k` or `out` is not
    /// `self.rows() x b.n`.
    pub fn matmul_prepacked_into(&self, b: &PackedWeight, out: &mut Matrix) -> Result<()> {
        let (m, k) = self.shape();
        let (bk, n) = b.shape();
        if k != bk {
            return Err(ShapeError::new(
                "matmul_prepacked_into",
                self.shape(),
                (bk, n),
            ));
        }
        if out.shape() != (m, n) {
            return Err(ShapeError::new(
                "matmul_prepacked_into",
                (m, n),
                out.shape(),
            ));
        }
        out.as_mut_slice().fill(0.0);
        gemm::gemm_prepacked(
            (m, n, k),
            self.as_slice(),
            Layout::RowMajor,
            &b.data,
            out.as_mut_slice(),
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(rows: usize, cols: usize, salt: usize) -> Matrix {
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|i| (((i * 13 + salt * 7) % 19) as f32 - 9.0) * 0.11)
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn prepacked_matches_matmul_bit_identically() {
        // sizes straddle the KC/NC/MC block boundaries
        for &(m, k, n) in &[(3, 5, 7), (128, 273, 900), (64, 300, 520), (1, 257, 513)] {
            let a = det(m, k, 1);
            let b = det(k, n, 2);
            let mut pw = PackedWeight::new();
            pw.pack(&b);
            let mut out = Matrix::zeros(m, n);
            a.matmul_prepacked_into(&pw, &mut out).unwrap();
            let expect = a.matmul(&b).unwrap();
            assert_eq!(out.as_slice(), expect.as_slice(), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn prepacked_transposed_matches_matmul_nt() {
        for &(m, k, n) in &[(4, 6, 3), (128, 900, 273), (33, 511, 129)] {
            let a = det(m, k, 3);
            let b = det(n, k, 4); // logical B = b^T
            let mut pw = PackedWeight::new();
            pw.pack_transposed(&b);
            let mut out = Matrix::zeros(m, n);
            a.matmul_prepacked_into(&pw, &mut out).unwrap();
            let mut expect = Matrix::zeros(m, n);
            a.matmul_nt_into(&b, &mut expect).unwrap();
            assert_eq!(out.as_slice(), expect.as_slice(), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn repacking_reuses_capacity() {
        let mut pw = PackedWeight::new();
        pw.pack(&det(300, 600, 5));
        let cap = pw.data.capacity();
        pw.pack(&det(300, 600, 6));
        assert_eq!(pw.data.capacity(), cap);
    }

    #[test]
    fn prepacked_rejects_bad_shapes() {
        let a = det(4, 5, 1);
        let mut pw = PackedWeight::new();
        pw.pack(&det(6, 3, 2));
        let mut out = Matrix::zeros(4, 3);
        assert!(a.matmul_prepacked_into(&pw, &mut out).is_err());
    }
}
