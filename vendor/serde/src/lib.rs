//! Offline subset of `serde` (see `vendor/README.md`).
//!
//! Instead of the upstream `Serializer`/`Deserializer` generics, this shim
//! round-trips every type through a JSON-shaped [`Value`] tree:
//! [`Serialize`] renders to a `Value`, [`Deserialize`] rebuilds from one,
//! and `serde_json` handles only text <-> `Value`. The derive macro (behind
//! the `derive` feature, matching upstream) supports non-generic structs
//! with named fields and enums with unit, tuple, and struct variants —
//! exactly the shapes used in this workspace.

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// JSON-shaped data model. Integers keep 64-bit precision (a `u64` seed
/// must not round-trip through `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered; duplicate keys are rejected by the JSON parser.
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Name of the JSON type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error (shared with `serde_json`).
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    pub fn custom(message: impl fmt::Display) -> Self {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn serialize_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn deserialize_value(value: &Value) -> Result<Self, Error>;
}

/// Looks up a required object field; used by derived `Deserialize` impls.
pub fn get_field<'a>(
    pairs: &'a [(String, Value)],
    key: &str,
    type_name: &str,
) -> Result<&'a Value, Error> {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{key}` for {type_name}")))
}

fn type_error(expected: &str, got: &Value) -> Error {
    Error::custom(format!("expected {expected}, found {}", got.kind()))
}

// ---- primitive impls -------------------------------------------------------

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(type_error("bool", other)),
        }
    }
}

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => return Err(type_error("unsigned integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

unsigned_impls!(u8, u16, u32, u64, usize);

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom(format!("integer {u} out of range for {}", stringify!($t))))?,
                    other => return Err(type_error("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

signed_impls!(i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(type_error("number", other)),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(type_error("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

// ---- container impls -------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(type_error("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let items = value.as_array().ok_or_else(|| type_error("array", value))?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let decoded: Vec<T> = items
            .iter()
            .map(T::deserialize_value)
            .collect::<Result<_, _>>()?;
        decoded
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(inner) => inner.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_keeps_full_precision() {
        let big = u64::MAX - 3;
        let v = big.serialize_value();
        assert_eq!(u64::deserialize_value(&v).unwrap(), big);
    }

    #[test]
    fn option_null_roundtrip() {
        let none: Option<f32> = None;
        assert_eq!(none.serialize_value(), Value::Null);
        assert_eq!(
            Option::<f32>::deserialize_value(&Value::Null).unwrap(),
            None
        );
    }

    #[test]
    fn array_length_is_checked() {
        let v = Value::Array(vec![Value::UInt(1), Value::UInt(2)]);
        assert!(<[u32; 3]>::deserialize_value(&v).is_err());
        assert_eq!(<[u32; 2]>::deserialize_value(&v).unwrap(), [1, 2]);
    }

    #[test]
    fn missing_field_reports_key() {
        let pairs = vec![("a".to_string(), Value::UInt(1))];
        let err = get_field(&pairs, "b", "Demo").unwrap_err();
        assert!(err.to_string().contains("`b`"));
    }
}
