//! Inverted dropout.

use crate::layers::LayerRng;
use crate::params::Binder;
use crate::Result;
use hwpr_autograd::Var;
use rand::Rng;

/// Inverted dropout: during training each element is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`; at inference the
/// layer is the identity.
///
/// The paper trains HW-PR-NAS with a dropout ratio of 0.02 (Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dropout {
    p: f32,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn new(p: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0, 1)"
        );
        Self { p }
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }

    /// Applies dropout to `x`. Active only when the binder is in training
    /// mode and `p > 0`; otherwise returns `x` unchanged.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the mask product (cannot happen for a
    /// well-formed tape).
    pub fn forward(&self, binder: &mut Binder<'_, '_>, x: Var, rng: &mut LayerRng) -> Result<Var> {
        if !binder.train || self.p == 0.0 {
            return Ok(x);
        }
        let (rows, cols) = binder.tape().value(x).shape();
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        // pooled mask: recycled into the tape pool on `Tape::reset`
        let mut mask = binder.tape().alloc(rows, cols);
        for v in mask.as_mut_slice() {
            *v = if rng.gen::<f32>() < keep { scale } else { 0.0 };
        }
        Ok(binder.tape().dropout(x, mask)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use hwpr_autograd::Tape;
    use hwpr_tensor::Matrix;
    use rand_chacha::rand_core::SeedableRng;

    #[test]
    fn identity_at_inference() {
        let params = Params::new();
        let mut tape = Tape::new();
        let mut binder = Binder::new(&mut tape, &params);
        let x = binder.input(Matrix::ones(2, 2));
        let mut rng = LayerRng::seed_from_u64(0);
        let y = Dropout::new(0.5).forward(&mut binder, x, &mut rng).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn training_mask_zeroes_and_rescales() {
        let params = Params::new();
        let mut tape = Tape::new();
        let mut binder = Binder::for_training(&mut tape, &params);
        let x = binder.input(Matrix::ones(20, 20));
        let mut rng = LayerRng::seed_from_u64(42);
        let y = Dropout::new(0.5).forward(&mut binder, x, &mut rng).unwrap();
        let v = tape.value(y);
        let zeros = v.as_slice().iter().filter(|&&e| e == 0.0).count();
        let twos = v
            .as_slice()
            .iter()
            .filter(|&&e| (e - 2.0).abs() < 1e-6)
            .count();
        assert_eq!(zeros + twos, 400);
        assert!(zeros > 100 && zeros < 300, "zeros {zeros}");
        // expectation preserved approximately
        assert!((v.mean() - 1.0).abs() < 0.2);
    }

    #[test]
    fn zero_probability_is_identity_even_training() {
        let params = Params::new();
        let mut tape = Tape::new();
        let mut binder = Binder::for_training(&mut tape, &params);
        let x = binder.input(Matrix::ones(2, 2));
        let mut rng = LayerRng::seed_from_u64(0);
        let y = Dropout::new(0.0).forward(&mut binder, x, &mut rng).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn invalid_probability_panics() {
        let _ = Dropout::new(1.0);
    }
}
