//! Neural-network building blocks for the HW-PR-NAS surrogate models.
//!
//! The crate layers a small but complete training stack on top of
//! [`hwpr_autograd`]:
//!
//! - [`Params`] — a central parameter store; layers hold [`ParamId`]s and a
//!   per-forward-pass [`Binder`] lazily inserts parameters onto the tape so
//!   gradients can be routed back to the store after `backward`.
//! - [`layers`] — `Linear`, `Embedding`, `Lstm` (the paper's 2-layer,
//!   225-unit latency encoder), `GcnLayer` (the 2-layer, 600-unit accuracy
//!   encoder with a global aggregation node), `Mlp` and `Dropout`.
//! - [`optim`] — `AdamW` (the paper's optimizer), plain `Sgd`, the cosine
//!   annealing schedule of Table II and patience-based `EarlyStopping`.
//! - [`batch`] — deterministic shuffled mini-batch index generation.
//!
//! # Examples
//!
//! Train a one-layer regressor on a toy linear target:
//!
//! ```
//! use hwpr_autograd::Tape;
//! use hwpr_nn::layers::Linear;
//! use hwpr_nn::optim::{AdamW, Optimizer};
//! use hwpr_nn::{Binder, Params};
//! use hwpr_tensor::{Init, Matrix};
//!
//! let mut params = Params::new();
//! let layer = Linear::new(&mut params, "fc", 2, 1, Init::Xavier, 7, true);
//! let mut opt = AdamW::new(0.05);
//! let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
//! let t = Matrix::col_vector(&[1.0, 2.0, 3.0]);
//! let mut last = f32::INFINITY;
//! for _ in 0..400 {
//!     let mut tape = Tape::new();
//!     let mut binder = Binder::new(&mut tape, &params);
//!     let xv = binder.input(x.clone());
//!     let y = layer.forward(&mut binder, xv)?;
//!     let loss = binder.tape().mse_loss(y, &t)?;
//!     let grads = binder.finish(loss)?;
//!     last = tape.value(loss)[(0, 0)];
//!     opt.step(&mut params, &grads);
//! }
//! assert!(last < 1e-2, "did not converge: {last}");
//! # Ok::<(), hwpr_nn::NnError>(())
//! ```

#![warn(missing_docs)]
pub mod batch;
pub mod infer;
pub mod layers;
pub mod optim;
mod params;

pub use params::{Binder, ParamId, Params};

use hwpr_autograd::AutogradError;
use std::error::Error;
use std::fmt;

/// Error produced by layer and training operations.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An autograd/shape failure in a forward or backward pass.
    Autograd(AutogradError),
    /// A layer was configured inconsistently (empty hidden sizes, etc.).
    Config(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Autograd(e) => write!(f, "{e}"),
            NnError::Config(msg) => write!(f, "invalid layer configuration: {msg}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Autograd(e) => Some(e),
            NnError::Config(_) => None,
        }
    }
}

impl From<AutogradError> for NnError {
    fn from(e: AutogradError) -> Self {
        NnError::Autograd(e)
    }
}

impl From<hwpr_tensor::ShapeError> for NnError {
    fn from(e: hwpr_tensor::ShapeError) -> Self {
        NnError::Autograd(AutogradError::Shape(e))
    }
}

/// Convenience alias for fallible nn operations.
pub type Result<T> = std::result::Result<T, NnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = NnError::Config("bad".into());
        assert!(e.to_string().contains("bad"));
        assert!(Error::source(&e).is_none());
        let e: NnError = AutogradError::NonScalarLoss { shape: (2, 2) }.into();
        assert!(Error::source(&e).is_some());
    }
}
