//! Table III: final hypervolume (mean ± standard error over 5 runs) of
//! eight search configurations on the three datasets, searching both
//! benchmarks simultaneously.

use crate::{shared_reference, true_objectives, Harness, MarkdownTable};
use hwpr_hwmodel::Platform;
use hwpr_metrics::MeanStdError;
use hwpr_moo::MooWorkspace;
use hwpr_nasbench::{Architecture, Dataset, SearchSpaceId};
use hwpr_search::{HwPrNasEvaluator, PairEvaluator};
use std::fmt::Write as _;

/// The eight method rows, in the paper's order.
pub const METHODS: [&str; 8] = [
    "Random Search (Measured Values)",
    "Random Search (BRP-NAS)",
    "Random Search (GATES)",
    "Random Search (HW-PR-NAS)",
    "MOAE (Measured Values)",
    "MOAE (BRP-NAS)",
    "MOAE (GATES)",
    "MOAE (HW-PR-NAS)",
];

/// Per-run populations for every method on one dataset.
pub fn collect_populations(
    h: &Harness,
    dataset: Dataset,
    platform: Platform,
) -> Vec<Vec<Vec<Architecture>>> {
    let spaces = vec![SearchSpaceId::NasBench201, SearchSpaceId::FBNet];
    let data = h.mixed_dataset(dataset, platform);
    let mut per_method: Vec<Vec<Vec<Architecture>>> = vec![Vec::new(); METHODS.len()];
    for run in 0..h.scale.runs() {
        let seed = 1000 + run as u64;
        let hwpr = h.train_hw_pr_nas(&data, seed);
        let brp = h.train_brp_nas(&data, seed);
        let gates = h.train_gates(&data, seed);
        // random search variants
        let mut measured = h.measured(dataset, platform);
        per_method[0].push(h.run_random(&mut measured, spaces.clone(), seed).population);
        let mut brp_eval = PairEvaluator::new(brp);
        per_method[1].push(h.run_random(&mut brp_eval, spaces.clone(), seed).population);
        let mut gates_eval = PairEvaluator::new(gates);
        per_method[2].push(
            h.run_random(&mut gates_eval, spaces.clone(), seed)
                .population,
        );
        let mut hwpr_eval = HwPrNasEvaluator::new(hwpr, platform);
        per_method[3].push(
            h.run_random(&mut hwpr_eval, spaces.clone(), seed)
                .population,
        );
        // MOEA variants (fresh surrogates per run, as the paper trains 5x)
        per_method[4].push(
            h.run_moea_measured(dataset, platform, spaces.clone(), seed)
                .population,
        );
        let brp = h.train_brp_nas(&data, seed.wrapping_add(7));
        per_method[5].push(h.run_moea_pair(brp, spaces.clone(), seed).population);
        let gates = h.train_gates(&data, seed.wrapping_add(7));
        per_method[6].push(h.run_moea_pair(gates, spaces.clone(), seed).population);
        let hwpr = h.train_hw_pr_nas(&data, seed.wrapping_add(7));
        per_method[7].push(
            h.run_moea_hwpr(hwpr, platform, spaces.clone(), seed)
                .population,
        );
    }
    per_method
}

/// Runs the experiment and returns the markdown report.
pub fn run(h: &Harness) -> String {
    let platform = Platform::EdgeGpu;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Table III — final hypervolume (mean ± std error, {} runs)\n",
        h.scale.runs()
    );
    let _ = writeln!(
        out,
        "Both benchmarks searched simultaneously; platform {platform}; \
         hypervolume in (error % × latency ms) units with the furthest \
         point as reference, scale `{:?}`.\n",
        h.scale
    );
    let mut table = MarkdownTable::new(vec![
        "Method",
        "CIFAR-10 ↑",
        "CIFAR-100 ↑",
        "ImageNet16-120 ↑",
    ]);
    let mut cells: Vec<Vec<String>> = METHODS.iter().map(|m| vec![m.to_string()]).collect();
    for dataset in Dataset::ALL {
        let oracle = h.measured(dataset, platform);
        let populations = collect_populations(h, dataset, platform);
        // shared reference across all methods and runs of this dataset
        let all_objs: Vec<Vec<Vec<f64>>> = populations
            .iter()
            .flatten()
            .map(|pop| true_objectives(pop, &oracle))
            .collect();
        let reference = shared_reference(&all_objs);
        let mut moo = MooWorkspace::new();
        for (mi, runs) in populations.iter().enumerate() {
            let hvs: Vec<f64> = runs
                .iter()
                .map(|pop| {
                    let objs = true_objectives(pop, &oracle);
                    moo.hypervolume(&objs, &reference)
                        .expect("reference bounds population")
                })
                .collect();
            cells[mi].push(MeanStdError::from_values(&hvs).to_string());
        }
    }
    for row in cells {
        table.row(row);
    }
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\nPaper's shape: MOAE (HW-PR-NAS) attains the best (or tied-best) \
         hypervolume with visibly smaller run-to-run standard error than \
         the two-surrogate variants; random search with HW-PR-NAS also \
         beats random search with per-objective surrogates."
    );
    out
}
