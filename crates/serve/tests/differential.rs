//! Correctness differential: a round trip through the serving stack must
//! return exactly what the frozen engine returns in-process — bit-for-bit
//! at f32 (results cross the wire as exact `f64` bit patterns), and
//! inside the workspace rank budget (Kendall τ ≥ 0.99 against the f32
//! reference) at f16/int8 — including when the server coalesces uneven
//! batches from interleaved clients into one forward.

use hwpr_core::{HwPrNas, ModelConfig, Precision, SurrogateDataset, TrainConfig};
use hwpr_hwmodel::{Platform, SimBench, SimBenchConfig};
use hwpr_nasbench::{Architecture, Dataset, SearchSpaceId};
use hwpr_serve::{ModelRegistry, ServeClient, ServeConfig, Server};
use std::sync::Arc;
use std::time::Duration;

fn trained(n: usize) -> (Arc<HwPrNas>, Vec<Architecture>) {
    let bench = SimBench::generate(SimBenchConfig {
        space: SearchSpaceId::NasBench201,
        sample_size: Some(n),
        seed: 11,
    });
    let data =
        SurrogateDataset::from_simbench(&bench, Dataset::Cifar10, Platform::EdgeGpu).unwrap();
    let (model, _) = HwPrNas::fit(&data, &ModelConfig::tiny(), &TrainConfig::tiny()).unwrap();
    let archs = data.samples().iter().map(|s| s.arch.clone()).collect();
    (Arc::new(model), archs)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn pair_bits(v: &[(f64, f64)]) -> Vec<(u64, u64)> {
    v.iter().map(|(a, l)| (a.to_bits(), l.to_bits())).collect()
}

fn tau(a: &[f64], b: &[f64]) -> f64 {
    let af: Vec<f32> = a.iter().map(|&x| x as f32).collect();
    let bf: Vec<f32> = b.iter().map(|&x| x as f32).collect();
    hwpr_metrics::kendall_tau(&af, &bf).unwrap()
}

#[test]
fn round_trip_is_bit_identical_to_direct_frozen_inference_at_f32() {
    let (nas, archs) = trained(48);
    nas.freeze_with(16, Precision::F32);
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("default", Arc::clone(&nas));
    let served = registry.get("default").unwrap();
    let slot = served.slot("Edge GPU").unwrap();

    let direct_scores = served
        .frozen()
        .predict_scores(served.cache(), &archs, slot)
        .unwrap();
    let direct_objectives = served
        .frozen()
        .predict_objectives(served.cache(), &archs, slot)
        .unwrap();

    let config = ServeConfig {
        batch_deadline: Duration::from_millis(1),
        ..ServeConfig::default()
    };
    let server = Server::start(registry, config).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();

    let scores = client
        .predict_scores("default", Platform::EdgeGpu, &archs)
        .unwrap();
    assert_eq!(bits(&scores), bits(&direct_scores));

    let objectives = client
        .predict_objectives("default", Platform::EdgeGpu, &archs)
        .unwrap();
    assert_eq!(pair_bits(&objectives), pair_bits(&direct_objectives));

    assert_eq!(client.list_models().unwrap(), vec![("default".into(), 1)]);
}

/// Interleaved clients with uneven batch sizes (7 and 13) under a long
/// coalesce deadline: the server merges them into one forward, and every
/// client still gets exactly its own rows, bit-identical to a direct
/// call on its own sub-batch.
#[test]
fn coalesced_uneven_batches_split_back_bit_exactly() {
    let (nas, archs) = trained(80);
    nas.freeze_with(16, Precision::F32);
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("default", Arc::clone(&nas));
    let served = registry.get("default").unwrap();
    let slot = served.slot("Edge GPU").unwrap();

    let config = ServeConfig {
        max_batch: 64,
        batch_deadline: Duration::from_millis(30),
        ..ServeConfig::default()
    };
    let server = Server::start(Arc::clone(&registry), config).unwrap();
    let addr = server.addr();

    let sizes: &[&[usize]] = &[&[7, 13, 7], &[13, 7, 13]];
    let mut handles = Vec::new();
    for (worker, plan) in sizes.iter().enumerate() {
        let archs = archs.clone();
        let plan: Vec<usize> = plan.to_vec();
        handles.push(std::thread::spawn(move || {
            let mut client = ServeClient::connect(addr).unwrap();
            // pipeline every request before reading any response, so the
            // requests are all in the queue together and coalesce
            let mut offset = worker * 40;
            let mut windows = Vec::new();
            for &n in &plan {
                let window = archs[offset..offset + n].to_vec();
                client
                    .send_predict(
                        hwpr_serve::PredictKind::Scores,
                        "default",
                        Platform::EdgeGpu,
                        &window,
                    )
                    .unwrap();
                windows.push(window);
                offset += n;
            }
            let mut replies = Vec::new();
            for _ in &plan {
                let mut out = Vec::new();
                let id = client.recv_scores(&mut out).unwrap();
                replies.push((id, out));
            }
            // replies arrive in completion order; ids are issued 1..=n
            replies.sort_by_key(|(id, _)| *id);
            (windows, replies)
        }));
    }
    for handle in handles {
        let (windows, replies) = handle.join().unwrap();
        assert_eq!(windows.len(), replies.len());
        for (window, (_, scores)) in windows.iter().zip(&replies) {
            let direct = served
                .frozen()
                .predict_scores(served.cache(), window, slot)
                .unwrap();
            assert_eq!(bits(scores), bits(&direct));
        }
    }
}

#[test]
fn reduced_precision_round_trips_stay_inside_the_rank_budget() {
    let (nas, archs) = trained(96);
    nas.freeze_with(16, Precision::F32);
    let f32_engine = nas.frozen();
    let slot = 0;
    let base = f32_engine
        .predict_scores(nas.encoding_cache(), &archs, slot)
        .unwrap();

    for precision in [Precision::F16, Precision::Int8] {
        nas.freeze_with(16, precision);
        let registry = Arc::new(ModelRegistry::new());
        registry.publish("quantized", Arc::clone(&nas));
        let served = registry.get("quantized").unwrap();
        assert_eq!(served.frozen().precision(), precision);
        let direct = served
            .frozen()
            .predict_scores(served.cache(), &archs, slot)
            .unwrap();

        let server = Server::start(registry, ServeConfig::default()).unwrap();
        let mut client = ServeClient::connect(server.addr()).unwrap();
        let scores = client
            .predict_scores("quantized", Platform::EdgeGpu, &archs)
            .unwrap();

        // the wire is exact: served == the same engine called directly
        assert_eq!(bits(&scores), bits(&direct), "{precision:?} wire drift");
        // and the engine itself stays inside the workspace rank budget
        let t = tau(&base, &scores);
        assert!(t >= 0.99, "{precision:?}: Kendall tau {t:.4} < 0.99");
    }
}
