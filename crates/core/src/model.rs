//! The HW-PR-NAS surrogate model (§III-B, Fig. 3).

use crate::config::ModelConfig;
use crate::data::EncodingCache;
use crate::encoders::{EncoderChoice, EncoderSet};
use crate::frozen::FrozenModel;
use crate::Result;
use hwpr_autograd::{Tape, Var};
use hwpr_hwmodel::Platform;
use hwpr_nasbench::{Architecture, Dataset};
use hwpr_nn::layers::{LayerRng, Mlp, MlpConfig};
use hwpr_nn::{Binder, Params};
use hwpr_tensor::Precision;
use parking_lot::RwLock;
use rand_chacha::rand_core::SeedableRng;
use std::sync::Arc;

/// Default maximum batch size used during inference (bounds tape memory
/// and sizes the frozen engine's activation arenas).
pub(crate) const INFER_BATCH: usize = 256;

/// Inference chunk size: [`INFER_BATCH`] unless overridden through the
/// `HWPR_INFER_BATCH` environment variable.
pub(crate) fn infer_batch() -> usize {
    hwpr_obs::env_or_else(
        "HWPR_INFER_BATCH",
        "a positive integer",
        parse_batch,
        || INFER_BATCH,
        INFER_BATCH,
    )
}

fn parse_batch(spec: &str) -> Option<usize> {
    spec.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// Parses an `HWPR_INFER_BATCH` override through the shared
/// warn-and-default policy, falling back to the default on anything that
/// is not a positive integer.
#[cfg(test)]
fn batch_from_spec(spec: &str) -> usize {
    hwpr_obs::spec_or(
        "HWPR_INFER_BATCH",
        "a positive integer",
        spec,
        parse_batch,
        INFER_BATCH,
    )
}

/// Frozen panel precision: f32 unless overridden through the
/// `HWPR_INFER_PRECISION` environment variable (`f32` | `f16` | `int8`).
pub(crate) fn infer_precision() -> Precision {
    hwpr_obs::env_or_else(
        "HWPR_INFER_PRECISION",
        "f32, f16 or int8",
        Precision::parse,
        || Precision::F32,
        Precision::F32,
    )
}

/// Parses an `HWPR_INFER_PRECISION` override through the shared
/// warn-and-default policy, falling back to f32 on anything that is not
/// a recognised precision name.
#[cfg(test)]
fn precision_from_spec(spec: &str) -> Precision {
    hwpr_obs::spec_or(
        "HWPR_INFER_PRECISION",
        "f32, f16 or int8",
        spec,
        Precision::parse,
        Precision::F32,
    )
}

/// Denormalises a predicted accuracy into the minimisation objective
/// `error %` (the model regresses accuracy in `[0, 1]`).
pub(crate) fn denorm_error(a: f32) -> f64 {
    (100.0 - a as f64 * 100.0).clamp(0.0, 100.0)
}

/// Denormalises a predicted accuracy into `accuracy %`.
pub(crate) fn denorm_accuracy(a: f32) -> f64 {
    (a as f64 * 100.0).clamp(0.0, 100.0)
}

/// Denormalises a predicted latency (regressed relative to the training
/// set's maximum) back into milliseconds.
pub(crate) fn denorm_latency(l: f32, max_latency: f64) -> f64 {
    (l as f64 * max_latency).max(0.0)
}

/// The trained HW-PR-NAS surrogate.
///
/// Built by [`HwPrNas::fit`] (single platform) or [`HwPrNas::fit_multi`]
/// (multi-platform latency head bank); scoring follows Fig. 3: a GCN+AF
/// accuracy branch and an LSTM+AF latency branch whose two predictions a
/// dense fusion layer turns into one Pareto score.
#[derive(Debug)]
pub struct HwPrNas {
    pub(crate) params: Params,
    pub(crate) accuracy_encoder: EncoderSet,
    pub(crate) latency_encoder: EncoderSet,
    pub(crate) accuracy_head: Mlp,
    pub(crate) latency_heads: Vec<Mlp>,
    pub(crate) platforms: Vec<Platform>,
    pub(crate) fusion: Mlp,
    /// Index of the first fusion parameter (everything below is frozen
    /// during the fusion fine-tune phase).
    pub(crate) fusion_param_start: usize,
    pub(crate) cache: EncodingCache,
    pub(crate) max_latency: Vec<f64>,
    pub(crate) dataset: Dataset,
    pub(crate) model_config: ModelConfig,
    /// Lazily compiled tape-free inference engine (see [`crate::frozen`]).
    pub(crate) frozen: RwLock<Option<Arc<FrozenModel>>>,
}

/// The raw branch outputs for one forward pass (still on the tape).
pub(crate) struct BranchOutputs {
    /// Normalised accuracy prediction, `[batch, 1]`.
    pub accuracy: Var,
    /// Normalised latency prediction, `[batch, 1]`.
    pub latency: Var,
    /// Fused Pareto score, `[batch, 1]`.
    pub score: Var,
}

impl HwPrNas {
    /// Builds an untrained model (used by the trainer).
    pub(crate) fn build(
        config: &ModelConfig,
        cache: EncodingCache,
        train_archs: &[Architecture],
        platforms: Vec<Platform>,
        max_latency: Vec<f64>,
        dataset: Dataset,
    ) -> Result<Self> {
        assert_eq!(platforms.len(), max_latency.len());
        let model_config = config.clone();
        let mut params = Params::new();
        let accuracy_encoder = EncoderSet::new(
            &mut params,
            "acc_enc",
            config,
            EncoderChoice::GCN_AF,
            &cache,
            train_archs,
        )?;
        let latency_encoder = EncoderSet::new(
            &mut params,
            "lat_enc",
            config,
            EncoderChoice::LSTM_AF,
            &cache,
            train_archs,
        )?;
        let accuracy_head = Mlp::new(
            &mut params,
            "acc_head",
            &MlpConfig {
                input_dim: accuracy_encoder.output_dim(),
                hidden: config.mlp_hidden.clone(),
                output_dim: 1,
                activation: Default::default(),
                dropout: config.dropout,
                seed: config.seed.wrapping_add(100),
            },
        )?;
        let latency_heads = platforms
            .iter()
            .enumerate()
            .map(|(i, p)| {
                Mlp::new(
                    &mut params,
                    &format!("lat_head.{}", p.name()),
                    &MlpConfig {
                        input_dim: latency_encoder.output_dim(),
                        hidden: config.mlp_hidden.clone(),
                        output_dim: 1,
                        activation: Default::default(),
                        dropout: config.dropout,
                        seed: config.seed.wrapping_add(200 + i as u64),
                    },
                )
            })
            .collect::<hwpr_nn::Result<Vec<_>>>()?;
        let fusion_param_start = params.len();
        // the fusion head combines the two branch predictions into one
        // Pareto score. A purely linear layer would make the score a
        // weighted-sum scalarisation whose maximiser is a single corner of
        // the front; a small nonlinear head lets the ranking loss flatten
        // the score along the front (equal scores within a Pareto rank).
        let fusion = Mlp::new(
            &mut params,
            "fusion",
            &MlpConfig {
                input_dim: 2,
                hidden: vec![16, 16],
                output_dim: 1,
                activation: Default::default(),
                dropout: 0.0,
                seed: config.seed.wrapping_add(300),
            },
        )?;
        Ok(Self {
            params,
            accuracy_encoder,
            latency_encoder,
            accuracy_head,
            latency_heads,
            platforms,
            fusion,
            fusion_param_start,
            cache,
            max_latency,
            dataset,
            model_config,
            frozen: RwLock::new(None),
        })
    }

    /// The compiled tape-free inference engine, built on first use (and
    /// after every [`Self::invalidate_frozen`]). Weight packing happens
    /// exactly once per trained model; repeat calls share the compiled
    /// engine through an [`Arc`].
    pub fn frozen(&self) -> Arc<FrozenModel> {
        if let Some(f) = self.frozen.read().as_ref() {
            return Arc::clone(f);
        }
        let mut slot = self.frozen.write();
        if let Some(f) = slot.as_ref() {
            return Arc::clone(f);
        }
        let f = Arc::new(FrozenModel::compile(self, infer_batch(), infer_precision()));
        *slot = Some(Arc::clone(&f));
        f
    }

    /// Compiles (and installs) a frozen engine with an explicit chunk
    /// size, bypassing `HWPR_INFER_BATCH`. Exposed so tests can force
    /// uneven final chunks.
    pub fn freeze_with_batch(&self, batch: usize) -> Arc<FrozenModel> {
        self.freeze_with(batch, Precision::F32)
    }

    /// Compiles (and installs) a frozen engine with an explicit chunk size
    /// and panel precision, bypassing `HWPR_INFER_BATCH` and
    /// `HWPR_INFER_PRECISION`. The differential and throughput harnesses
    /// use this to pin reduced-precision engines next to the f32 one.
    pub fn freeze_with(&self, batch: usize, precision: Precision) -> Arc<FrozenModel> {
        let f = Arc::new(FrozenModel::compile(self, batch.max(1), precision));
        *self.frozen.write() = Some(Arc::clone(&f));
        f
    }

    /// Drops the compiled engine; the next predict call recompiles from
    /// the current parameter values. Must be called whenever `params`
    /// change after a freeze (training steps, weight restores).
    pub(crate) fn invalidate_frozen(&self) {
        *self.frozen.write() = None;
    }

    /// The platforms this model carries latency heads for.
    pub fn platforms(&self) -> &[Platform] {
        &self.platforms
    }

    /// The image dataset the model was trained for.
    pub fn dataset(&self) -> Dataset {
        self.dataset
    }

    /// The model's shared per-architecture encoding cache. Exposed so
    /// external drivers of the frozen engine (the serving layer) can pair
    /// [`Self::frozen`] with the cache it was compiled against.
    pub fn encoding_cache(&self) -> &EncodingCache {
        &self.cache
    }

    /// Total number of trainable scalars.
    pub fn parameter_count(&self) -> usize {
        self.params.scalar_count()
    }

    pub(crate) fn platform_slot(&self, platform: Platform) -> Result<usize> {
        self.platforms
            .iter()
            .position(|&p| p == platform)
            .ok_or_else(|| {
                crate::CoreError::Data(format!(
                    "model has no latency head for {platform}; available: {:?}",
                    self.platforms
                ))
            })
    }

    /// One forward pass over a batch (used by training and inference).
    pub(crate) fn forward(
        &self,
        binder: &mut Binder<'_, '_>,
        archs: &[Architecture],
        platform_slot: usize,
        rng: &mut LayerRng,
    ) -> Result<BranchOutputs> {
        let acc_repr = self
            .accuracy_encoder
            .forward(binder, &self.cache, archs, rng)?;
        let accuracy = self.accuracy_head.forward(binder, acc_repr, rng)?;
        let lat_repr = self
            .latency_encoder
            .forward(binder, &self.cache, archs, rng)?;
        let latency = self.latency_heads[platform_slot].forward(binder, lat_repr, rng)?;
        let both = binder
            .tape()
            .concat_cols(&[accuracy, latency])
            .map_err(hwpr_nn::NnError::from)?;
        let score = self.fusion.forward(binder, both, rng)?;
        Ok(BranchOutputs {
            accuracy,
            latency,
            score,
        })
    }

    /// Pareto scores of `archs` on `platform` (higher = closer to the
    /// predicted Pareto front). This is the single call the MOEA makes.
    ///
    /// Runs on the frozen tape-free engine, pinned to
    /// [`Self::predict_scores_tape`] by the documented error budget
    /// (f32 max-abs ≤ 1e-5, τ = 1.0; see `hwpr_nn::infer`), with
    /// differential tests asserting the budget.
    ///
    /// # Errors
    ///
    /// Returns an error when the model has no head for `platform`.
    pub fn predict_scores(&self, archs: &[Architecture], platform: Platform) -> Result<Vec<f64>> {
        let slot = self.platform_slot(platform)?;
        self.frozen().predict_scores(&self.cache, archs, slot)
    }

    /// [`Self::predict_scores`] into a caller-held buffer: with a warmed
    /// frozen engine and encoding cache, this steady-state form performs
    /// zero heap allocations (pinned by the `alloc-count` harness in
    /// `hwpr-bench`).
    ///
    /// # Errors
    ///
    /// Returns an error when the model has no head for `platform`.
    pub fn predict_scores_into(
        &self,
        archs: &[Architecture],
        platform: Platform,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        let slot = self.platform_slot(platform)?;
        self.frozen()
            .predict_scores_into(&self.cache, archs, slot, out)
    }

    /// Reference implementation of [`Self::predict_scores`] on the
    /// recording tape. Kept for differential testing and for callers whose
    /// parameters are still changing (e.g. per-epoch validation).
    ///
    /// # Errors
    ///
    /// Returns an error when the model has no head for `platform`.
    pub fn predict_scores_tape(
        &self,
        archs: &[Architecture],
        platform: Platform,
    ) -> Result<Vec<f64>> {
        let slot = self.platform_slot(platform)?;
        let mut rng = LayerRng::seed_from_u64(0);
        let mut out = Vec::with_capacity(archs.len());
        // one tape for all chunks: reset() recycles buffers between passes
        let mut tape = Tape::new();
        let mut bound: Vec<Option<Var>> = Vec::new();
        for chunk in archs.chunks(infer_batch()) {
            tape.reset();
            let mut binder = Binder::rebind(&mut tape, &self.params, bound, false);
            let outputs = self.forward(&mut binder, chunk, slot, &mut rng)?;
            bound = binder.into_bound();
            out.extend(
                tape.value(outputs.score)
                    .as_slice()
                    .iter()
                    .map(|&v| v as f64),
            );
        }
        Ok(out)
    }

    /// Scores and predicted minimisation objectives `[error %, latency
    /// ms]` from a *single* forward pass — everything Fig. 3 produces in
    /// one surrogate call. Runs on the frozen engine, pinned to
    /// [`Self::predict_full_tape`] by the documented error budget.
    ///
    /// # Errors
    ///
    /// Returns an error when the model has no head for `platform`.
    pub fn predict_full(
        &self,
        archs: &[Architecture],
        platform: Platform,
    ) -> Result<(Vec<f64>, Vec<Vec<f64>>)> {
        let slot = self.platform_slot(platform)?;
        self.frozen().predict_full(&self.cache, archs, slot)
    }

    /// Reference implementation of [`Self::predict_full`] on the
    /// recording tape.
    ///
    /// # Errors
    ///
    /// Returns an error when the model has no head for `platform`.
    pub fn predict_full_tape(
        &self,
        archs: &[Architecture],
        platform: Platform,
    ) -> Result<(Vec<f64>, Vec<Vec<f64>>)> {
        let slot = self.platform_slot(platform)?;
        let mut rng = LayerRng::seed_from_u64(0);
        let mut scores = Vec::with_capacity(archs.len());
        let mut objectives = Vec::with_capacity(archs.len());
        let mut tape = Tape::new();
        let mut bound: Vec<Option<Var>> = Vec::new();
        for chunk in archs.chunks(infer_batch()) {
            tape.reset();
            let mut binder = Binder::rebind(&mut tape, &self.params, bound, false);
            let outputs = self.forward(&mut binder, chunk, slot, &mut rng)?;
            bound = binder.into_bound();
            scores.extend(
                tape.value(outputs.score)
                    .as_slice()
                    .iter()
                    .map(|&v| v as f64),
            );
            let acc = tape.value(outputs.accuracy);
            let lat = tape.value(outputs.latency);
            for (&a, &l) in acc.as_slice().iter().zip(lat.as_slice()) {
                objectives.push(vec![
                    denorm_error(a),
                    denorm_latency(l, self.max_latency[slot]),
                ]);
            }
        }
        Ok((scores, objectives))
    }

    /// [`Self::predict_full`] with the batch split across scoped worker
    /// threads (the MOEA's per-generation hot path).
    ///
    /// The input is cut into `threads` contiguous chunks, each worker runs
    /// the frozen serial predictor on its chunk with its own activation
    /// arena (checked out from the engine's arena pool, so the parallel
    /// path never re-packs weights), and the results are spliced back in
    /// input order. Every row of a forward pass is independent and dropout
    /// is statically elided, so the result is bit-identical to the serial
    /// path for any thread count.
    ///
    /// # Errors
    ///
    /// Returns an error when the model has no head for `platform` or any
    /// worker's prediction fails.
    pub fn predict_full_parallel(
        &self,
        archs: &[Architecture],
        platform: Platform,
        threads: usize,
    ) -> Result<(Vec<f64>, Vec<Vec<f64>>)> {
        let slot = self.platform_slot(platform)?;
        self.frozen()
            .predict_full_parallel(&self.cache, archs, slot, threads)
    }

    /// Predicted `(accuracy %, latency ms)` pairs — the branch outputs
    /// denormalised. Exposed for the predictor-quality studies. Runs on
    /// the frozen engine, pinned to [`Self::predict_objectives_tape`]
    /// by the documented error budget.
    ///
    /// # Errors
    ///
    /// Returns an error when the model has no head for `platform`.
    pub fn predict_objectives(
        &self,
        archs: &[Architecture],
        platform: Platform,
    ) -> Result<Vec<(f64, f64)>> {
        let slot = self.platform_slot(platform)?;
        self.frozen().predict_objectives(&self.cache, archs, slot)
    }

    /// Reference implementation of [`Self::predict_objectives`] on the
    /// recording tape.
    ///
    /// # Errors
    ///
    /// Returns an error when the model has no head for `platform`.
    pub fn predict_objectives_tape(
        &self,
        archs: &[Architecture],
        platform: Platform,
    ) -> Result<Vec<(f64, f64)>> {
        let slot = self.platform_slot(platform)?;
        let mut rng = LayerRng::seed_from_u64(0);
        let mut out = Vec::with_capacity(archs.len());
        let mut tape = Tape::new();
        let mut bound: Vec<Option<Var>> = Vec::new();
        for chunk in archs.chunks(infer_batch()) {
            tape.reset();
            let mut binder = Binder::rebind(&mut tape, &self.params, bound, false);
            let outputs = self.forward(&mut binder, chunk, slot, &mut rng)?;
            bound = binder.into_bound();
            let acc = tape.value(outputs.accuracy);
            let lat = tape.value(outputs.latency);
            for (&a, &l) in acc.as_slice().iter().zip(lat.as_slice()) {
                out.push((
                    denorm_accuracy(a),
                    denorm_latency(l, self.max_latency[slot]),
                ));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::data::SurrogateDataset;
    use hwpr_hwmodel::{SimBench, SimBenchConfig};
    use hwpr_nasbench::SearchSpaceId;

    fn tiny_dataset() -> SurrogateDataset {
        let bench = SimBench::generate(SimBenchConfig {
            space: SearchSpaceId::NasBench201,
            sample_size: Some(48),
            seed: 3,
        });
        SurrogateDataset::from_simbench(&bench, Dataset::Cifar10, Platform::EdgeGpu).unwrap()
    }

    #[test]
    fn fit_and_predict_shapes() {
        let data = tiny_dataset();
        let (model, report) =
            HwPrNas::fit(&data, &ModelConfig::tiny(), &TrainConfig::tiny()).unwrap();
        assert!(report.epochs_run >= 1);
        assert!(model.parameter_count() > 0);
        assert_eq!(model.platforms(), &[Platform::EdgeGpu]);
        assert_eq!(model.dataset(), Dataset::Cifar10);
        let archs: Vec<Architecture> = data.samples().iter().map(|s| s.arch.clone()).collect();
        let scores = model.predict_scores(&archs, Platform::EdgeGpu).unwrap();
        assert_eq!(scores.len(), archs.len());
        assert!(scores.iter().all(|s| s.is_finite()));
        let objs = model.predict_objectives(&archs, Platform::EdgeGpu).unwrap();
        assert_eq!(objs.len(), archs.len());
        for (a, l) in objs {
            assert!((0.0..=100.0).contains(&a));
            assert!(l >= 0.0);
        }
    }

    #[test]
    fn unknown_platform_is_an_error() {
        let data = tiny_dataset();
        let (model, _) = HwPrNas::fit(&data, &ModelConfig::tiny(), &TrainConfig::tiny()).unwrap();
        let archs = vec![data.samples()[0].arch.clone()];
        assert!(model.predict_scores(&archs, Platform::Eyeriss).is_err());
    }

    #[test]
    fn precision_spec_parses_and_falls_back() {
        assert_eq!(precision_from_spec("f32"), Precision::F32);
        assert_eq!(precision_from_spec(" F16 "), Precision::F16);
        assert_eq!(precision_from_spec("int8"), Precision::Int8);
        assert_eq!(precision_from_spec("i8"), Precision::Int8);
        assert_eq!(precision_from_spec("fp64"), Precision::F32);
        assert_eq!(precision_from_spec(""), Precision::F32);
    }

    #[test]
    fn batch_spec_parses_and_falls_back() {
        assert_eq!(batch_from_spec("7"), 7);
        assert_eq!(batch_from_spec(" 512 "), 512);
        assert_eq!(batch_from_spec("0"), INFER_BATCH);
        assert_eq!(batch_from_spec("-3"), INFER_BATCH);
        assert_eq!(batch_from_spec("lots"), INFER_BATCH);
        assert_eq!(batch_from_spec(""), INFER_BATCH);
    }

    #[test]
    fn denorm_helpers_clamp() {
        assert_eq!(denorm_error(0.95), 100.0 - 0.95f32 as f64 * 100.0);
        assert_eq!(denorm_error(2.0), 0.0); // accuracy above 100% clamps
        assert_eq!(denorm_error(-1.0), 100.0);
        assert_eq!(denorm_accuracy(0.5), 50.0);
        assert_eq!(denorm_accuracy(1.5), 100.0);
        assert_eq!(denorm_latency(0.5, 8.0), 4.0);
        assert_eq!(denorm_latency(-0.5, 8.0), 0.0);
    }

    #[test]
    fn freeze_compiles_once_and_invalidates() {
        let data = tiny_dataset();
        let (model, _) = HwPrNas::fit(&data, &ModelConfig::tiny(), &TrainConfig::tiny()).unwrap();
        let a = model.frozen();
        let b = model.frozen();
        assert!(Arc::ptr_eq(&a, &b), "repeat freezes must share the engine");
        model.invalidate_frozen();
        let c = model.frozen();
        assert!(!Arc::ptr_eq(&a, &c), "invalidation must force a recompile");
    }

    #[test]
    fn deterministic_inference() {
        let data = tiny_dataset();
        let (model, _) = HwPrNas::fit(&data, &ModelConfig::tiny(), &TrainConfig::tiny()).unwrap();
        let archs: Vec<Architecture> = data
            .samples()
            .iter()
            .take(5)
            .map(|s| s.arch.clone())
            .collect();
        let a = model.predict_scores(&archs, Platform::EdgeGpu).unwrap();
        let b = model.predict_scores(&archs, Platform::EdgeGpu).unwrap();
        assert_eq!(a, b);
    }
}
