//! §III-E study: cross-platform latency correlations (justifying the
//! multi-platform latency predictor).

use crate::Harness;
use hwpr_hwmodel::correlation::latency_correlation;
use hwpr_hwmodel::Platform;
use hwpr_nasbench::{Dataset, SearchSpaceId};
use std::fmt::Write as _;

/// Runs the study and returns the markdown report.
pub fn run(h: &Harness) -> String {
    let samples = match h.scale {
        crate::Scale::Smoke => 80,
        _ => 300,
    };
    let mut out = String::new();
    let _ = writeln!(out, "# §III-E — cross-platform latency correlations\n");
    for (space, dataset) in [
        (SearchSpaceId::NasBench201, Dataset::Cifar10),
        (SearchSpaceId::NasBench201, Dataset::ImageNet16),
        (SearchSpaceId::FBNet, Dataset::Cifar10),
    ] {
        let m = latency_correlation(space, dataset, samples, 0);
        let _ = writeln!(out, "## {space} @ {dataset}\n");
        out.push_str(&m.to_markdown());
        out.push('\n');
        if space == SearchSpaceId::NasBench201 && dataset == Dataset::Cifar10 {
            let _ = writeln!(
                out,
                "Key observations (paper's §III-E): the family {{Raspberry Pi 4, \
                 Pixel 3, FPGA ZC706}} is strongly correlated \
                 (Pi↔Pixel = {:.2}, Pi↔ZC706 = {:.2}) while the two FPGAs \
                 disagree (ZC706↔ZCU102 = {:.2}; the paper measures 0.23).\n",
                m.get(Platform::RaspberryPi4, Platform::Pixel3),
                m.get(Platform::RaspberryPi4, Platform::FpgaZc706),
                m.get(Platform::FpgaZc706, Platform::FpgaZcu102),
            );
        }
    }
    out
}
