//! Regenerates Figure 1 (one vs two surrogates: fronts, speedup, hypervolume).
fn main() {
    let harness = hwpr_experiments::Harness::new();
    let report = hwpr_experiments::exps::fig1::run(&harness);
    hwpr_experiments::write_report("fig1_motivation", &report);
}
