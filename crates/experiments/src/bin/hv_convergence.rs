//! Regenerates the hypervolume-convergence analysis (§IV-D).
fn main() {
    let harness = hwpr_experiments::Harness::new();
    let report = hwpr_experiments::exps::hv_convergence::run(&harness);
    hwpr_experiments::write_report("hv_convergence", &report);
}
