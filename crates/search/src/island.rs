//! The sharded island-model MOEA: N islands evolving in parallel with
//! ring migration, a global Pareto archive, and checkpoint/resume.
//!
//! # Topology and determinism
//!
//! Each island owns everything it touches during an epoch — population,
//! fitness, [`MooWorkspace`], [`SplitMix64`] RNG stream, evaluator (with
//! its own `ScoreCache` shard) — so an island's trajectory between
//! migration points is a pure function of its own state. Epochs of
//! `migration_every` generations run the islands across worker lanes
//! (`workers`); at the epoch barrier every island pushes one
//! [`Emigration`] message onto a lock-free channel, the coordinator
//! drains and **sorts the messages by island id**, and only then mutates
//! shared state: the global archive merge and the ring migration
//! (island *i* receives the top elites of island *i − 1 mod N*). The
//! result is therefore a pure function of `(config, seed)` — bit-
//! identical at 1, 2 or 8 worker lanes, which the cross-lane-count
//! differential test proves. The *logical* island count is part of the
//! configuration: changing it changes the search (different populations,
//! different migration ring), deterministically so.
//!
//! # Checkpoint/resume
//!
//! On a configurable epoch cadence the full search state — archive,
//! per-island population/fitness/RNG/cache — is written as a versioned
//! JSON snapshot (the `persist.rs` conventions: a `version` field
//! checked on load, shortest-roundtrip floats so every `f64` survives
//! exactly). [`IslandSearch::resume`] rebuilds the state and continues;
//! a run killed at generation G and resumed finishes bit-identical to an
//! uninterrupted one (proven by a differential test).

use crate::channel::MigrationChannel;
use crate::clock::SearchClock;
use crate::evaluator::{CacheEntry, Evaluator, Fitness, SharedObjectives};
use crate::moea::tournament;
use crate::rng::SplitMix64;
use crate::{Result, SearchError};
use hwpr_moo::{nadir_reference_point, Fronts, IncrementalHv2, MooWorkspace, ParetoArchive};
use hwpr_nasbench::{Architecture, SearchSpaceId};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of the island search. Serialisable: checkpoints embed
/// the config so a resume cannot silently run different settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IslandConfig {
    /// Number of logical islands (each with its own population).
    pub islands: usize,
    /// Population size **per island**.
    pub population: usize,
    /// Generations each island runs in total.
    pub generations: usize,
    /// Epoch length: generations between migrations (`K`).
    pub migration_every: usize,
    /// Elites each island emits per migration (`E`).
    pub migrants: usize,
    /// Probability of mutating each offspring.
    pub mutation_rate: f64,
    /// Probability of producing an offspring by crossover.
    pub crossover_rate: f64,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Search spaces to sample from.
    pub spaces: Vec<SearchSpaceId>,
    /// RNG seed; island `i` runs stream `i` of this seed.
    pub seed: u64,
    /// Executor lanes. `0` = one per island up to the machine
    /// parallelism. **Never affects results**, only wall-clock.
    pub workers: usize,
    /// Write a snapshot every this many epochs (`0` = off).
    pub checkpoint_every: usize,
    /// Snapshot destination (required when `checkpoint_every > 0`).
    pub checkpoint_path: Option<String>,
}

impl IslandConfig {
    /// A small configuration for tests and smoke runs.
    pub fn small(space: SearchSpaceId) -> Self {
        Self {
            islands: 2,
            population: 8,
            generations: 6,
            migration_every: 2,
            migrants: 2,
            mutation_rate: 0.9,
            crossover_rate: 0.5,
            tournament: 2,
            spaces: vec![space],
            seed: 0,
            workers: 0,
            checkpoint_every: 0,
            checkpoint_path: None,
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Applies the `HWPR_ISLANDS` / `HWPR_MIGRATION_EVERY` /
    /// `HWPR_CHECKPOINT_EVERY` environment overrides (warn-and-default on
    /// junk, like every other `HWPR_*` knob).
    pub fn with_env_overrides(mut self) -> Self {
        if std::env::var(ISLANDS_ENV).is_ok() {
            self.islands = island_count();
        }
        if std::env::var(MIGRATION_ENV).is_ok() {
            self.migration_every = migration_interval();
        }
        if std::env::var(CHECKPOINT_ENV).is_ok() {
            self.checkpoint_every = checkpoint_interval();
        }
        self
    }

    fn validate(&self) -> Result<()> {
        if self.islands == 0 {
            return Err(SearchError::Config("at least one island required".into()));
        }
        if self.population < 2 {
            return Err(SearchError::Config(
                "island population must be at least 2".into(),
            ));
        }
        if self.migration_every == 0 {
            return Err(SearchError::Config(
                "migration interval must be positive".into(),
            ));
        }
        if self.migrants >= self.population {
            return Err(SearchError::Config(
                "migrants must be fewer than the island population".into(),
            ));
        }
        if self.tournament == 0 {
            return Err(SearchError::Config(
                "tournament size must be positive".into(),
            ));
        }
        if self.spaces.is_empty() {
            return Err(SearchError::Config(
                "at least one search space required".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.mutation_rate) || !(0.0..=1.0).contains(&self.crossover_rate)
        {
            return Err(SearchError::Config("rates must be in [0, 1]".into()));
        }
        if self.checkpoint_every > 0 && self.checkpoint_path.is_none() {
            return Err(SearchError::Config(
                "checkpoint_every needs a checkpoint_path".into(),
            ));
        }
        Ok(())
    }
}

/// `HWPR_ISLANDS`: logical island count override.
pub const ISLANDS_ENV: &str = "HWPR_ISLANDS";
/// `HWPR_MIGRATION_EVERY`: epoch length override.
pub const MIGRATION_ENV: &str = "HWPR_MIGRATION_EVERY";
/// `HWPR_CHECKPOINT_EVERY`: checkpoint cadence override (epochs, 0=off).
pub const CHECKPOINT_ENV: &str = "HWPR_CHECKPOINT_EVERY";

/// Hard ceiling on `HWPR_ISLANDS`: beyond this the per-island population
/// degenerates and the coordinator merge dominates.
const MAX_ISLANDS: usize = 256;

/// Island count: `HWPR_ISLANDS` when set to an integer in
/// `1..=256`, otherwise the machine's available parallelism (capped the
/// same way). Junk warns through the telemetry sink and falls back to 1
/// — a typo must not silently fan a search out.
pub fn island_count() -> usize {
    hwpr_obs::env_or_else(
        ISLANDS_ENV,
        "an integer in 1..=256",
        parse_islands,
        || {
            std::thread::available_parallelism()
                .map_or(1, |n| n.get())
                .min(MAX_ISLANDS)
        },
        1,
    )
}

fn parse_islands(spec: &str) -> Option<usize> {
    spec.trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| (1..=MAX_ISLANDS).contains(&n))
}

/// Migration epoch length: `HWPR_MIGRATION_EVERY` when set to a positive
/// integer, otherwise 4 generations (also the junk fallback, with a
/// warning).
pub fn migration_interval() -> usize {
    hwpr_obs::env_or_else(MIGRATION_ENV, "a positive integer", parse_positive, || 4, 4)
}

fn parse_positive(spec: &str) -> Option<usize> {
    spec.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// Checkpoint cadence in epochs: `HWPR_CHECKPOINT_EVERY` when set to an
/// integer (`0` disables), otherwise off. Junk warns and stays off.
pub fn checkpoint_interval() -> usize {
    hwpr_obs::env_or_else(
        CHECKPOINT_ENV,
        "a non-negative integer",
        |spec| spec.trim().parse::<usize>().ok(),
        || 0,
        0,
    )
}

/// Spec-level parsers for the warn-and-default tests (no env mutation).
#[cfg(test)]
pub(crate) mod spec {
    pub(crate) fn islands(spec: &str) -> usize {
        hwpr_obs::spec_or(
            super::ISLANDS_ENV,
            "an integer in 1..=256",
            spec,
            super::parse_islands,
            1,
        )
    }

    pub(crate) fn migration(spec: &str) -> usize {
        hwpr_obs::spec_or(
            super::MIGRATION_ENV,
            "a positive integer",
            spec,
            super::parse_positive,
            4,
        )
    }

    pub(crate) fn checkpoint(spec: &str) -> usize {
        hwpr_obs::spec_or(
            super::CHECKPOINT_ENV,
            "a non-negative integer",
            spec,
            |s| s.trim().parse::<usize>().ok(),
            0,
        )
    }
}

/// Which [`Fitness`] shape an island carries (fixed by the evaluator's
/// first batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FitnessKind {
    /// Scalar scores only.
    Scores,
    /// Objective vectors only.
    Objectives,
    /// Scores plus predicted objectives (the HW-PR-NAS evaluator).
    Ranked,
}

/// Flattened fitness storage: one growable buffer per component, so the
/// per-generation merge/filter reuses capacity instead of rebuilding
/// [`Fitness`] values.
#[derive(Debug, Default)]
struct IslandFitness {
    kind: Option<FitnessKind>,
    scores: Vec<f64>,
    objectives: Vec<SharedObjectives>,
}

impl IslandFitness {
    /// Appends an evaluator batch, fixing/checking the fitness kind.
    fn absorb(&mut self, fitness: Fitness) -> Result<()> {
        let kind = match &fitness {
            Fitness::Scores(_) => FitnessKind::Scores,
            Fitness::Objectives(_) => FitnessKind::Objectives,
            Fitness::Ranked { .. } => FitnessKind::Ranked,
        };
        match self.kind {
            None => self.kind = Some(kind),
            Some(k) if k == kind => {}
            Some(k) => {
                return Err(SearchError::Config(format!(
                    "evaluator changed fitness kind mid-search ({k:?} -> {kind:?})"
                )));
            }
        }
        match fitness {
            Fitness::Scores(s) => self.scores.extend(s),
            Fitness::Objectives(o) => self.objectives.extend(o),
            Fitness::Ranked { scores, objectives } => {
                self.scores.extend(scores);
                self.objectives.extend(objectives);
            }
        }
        Ok(())
    }

    fn clear(&mut self) {
        self.scores.clear();
        self.objectives.clear();
    }

    fn has_scores(&self) -> bool {
        matches!(self.kind, Some(FitnessKind::Scores | FitnessKind::Ranked))
    }

    fn has_objectives(&self) -> bool {
        matches!(
            self.kind,
            Some(FitnessKind::Objectives | FitnessKind::Ranked)
        )
    }
}

/// Reusable per-island buffers: after the first generation every
/// collection here has its high-water capacity and the warm generation
/// step allocates nothing (proven by the counting-allocator harness).
struct IslandScratch {
    offspring: Vec<Architecture>,
    offspring_fitness: IslandFitness,
    keys: Vec<f64>,
    pool: Vec<usize>,
    keep: Vec<usize>,
    order: Vec<usize>,
    seen: HashSet<(SearchSpaceId, u128)>,
    fronts: Fronts,
    unique_objs: Vec<SharedObjectives>,
    next_population: Vec<Architecture>,
    next_fitness: IslandFitness,
}

impl IslandScratch {
    fn new() -> Self {
        Self {
            offspring: Vec::new(),
            offspring_fitness: IslandFitness::default(),
            keys: Vec::new(),
            pool: Vec::new(),
            keep: Vec::new(),
            order: Vec::new(),
            seen: HashSet::new(),
            fronts: Fronts::new(),
            unique_objs: Vec::new(),
            next_population: Vec::new(),
            next_fitness: IslandFitness::default(),
        }
    }
}

/// One island: the complete state its epoch evolves.
struct Island {
    id: usize,
    rng: SplitMix64,
    population: Vec<Architecture>,
    fitness: IslandFitness,
    evaluator: Box<dyn Evaluator + Send>,
    moo: MooWorkspace,
    clock: SearchClock,
    scratch: IslandScratch,
    evaluations: u64,
}

/// One elite travelling the migration ring, fitness attached so the
/// destination island does not re-evaluate it.
struct Migrant {
    arch: Architecture,
    score: f64,
    objectives: Option<SharedObjectives>,
}

/// What an island pushes onto the channel at the epoch barrier.
struct Emigration {
    from: usize,
    elites: Vec<Migrant>,
    /// The island's current non-dominated front (for the global archive).
    front: Vec<(Architecture, Vec<f64>)>,
}

impl Island {
    /// Advances the island one generation: tournament selection,
    /// crossover + mutation, offspring evaluation, elitist survivor
    /// selection. Allocation-free when warm (buffer-reusing evaluator,
    /// telemetry off).
    fn step(&mut self, cfg: &IslandConfig) -> Result<()> {
        let Island {
            rng,
            population,
            fitness,
            evaluator,
            moo,
            clock,
            scratch,
            evaluations,
            ..
        } = self;
        let kind = fitness
            .kind
            .ok_or_else(|| SearchError::Config("island stepped before evaluation".into()))?;

        // parent-selection keys: scores directly, or -(rank) + crowding
        // tie-break for pure objective vectors
        if kind == FitnessKind::Objectives {
            objective_keys_into(
                &fitness.objectives,
                moo,
                &mut scratch.fronts,
                &mut scratch.keys,
            )?;
        }
        let keys: &[f64] = match kind {
            FitnessKind::Scores | FitnessKind::Ranked => &fitness.scores,
            FitnessKind::Objectives => &scratch.keys,
        };

        // offspring via tournament + crossover + mutation
        scratch.offspring.clear();
        for _ in 0..cfg.population {
            let a = tournament(keys, cfg.tournament, rng);
            let child = if rng.gen_bool(cfg.crossover_rate) {
                let b = tournament(keys, cfg.tournament, rng);
                population[a]
                    .crossover(&population[b], rng)
                    .unwrap_or_else(|| population[a].clone())
            } else {
                population[a].clone()
            };
            let child = if rng.gen_bool(cfg.mutation_rate) {
                child.mutate(rng)
            } else {
                child
            };
            scratch.offspring.push(child);
        }

        // evaluate: buffer-reusing scores fast path, else the boxed path
        scratch.offspring_fitness.clear();
        let fast = kind == FitnessKind::Scores
            && evaluator.evaluate_scores_into(
                &scratch.offspring,
                clock,
                &mut scratch.offspring_fitness.scores,
            )?;
        if fast {
            scratch.offspring_fitness.kind = Some(FitnessKind::Scores);
            if scratch.offspring_fitness.scores.len() != scratch.offspring.len() {
                return Err(SearchError::Surrogate(
                    "evaluate_scores_into returned a short batch".into(),
                ));
            }
        } else {
            let batch = evaluator.evaluate(&scratch.offspring, clock)?;
            scratch.offspring_fitness.kind = None;
            scratch.offspring_fitness.absorb(batch)?;
            if scratch.offspring_fitness.kind != Some(kind) {
                return Err(SearchError::Config(
                    "evaluator changed fitness kind mid-search".into(),
                ));
            }
        }
        *evaluations += scratch.offspring.len() as u64;

        // elitist survivor selection over P ∪ Q
        population.extend(scratch.offspring.iter().cloned());
        fitness
            .scores
            .extend_from_slice(&scratch.offspring_fitness.scores);
        fitness
            .objectives
            .extend(scratch.offspring_fitness.objectives.iter().cloned());
        survivors_into(
            population,
            fitness,
            kind,
            cfg.population,
            moo,
            &mut scratch.seen,
            &mut scratch.pool,
            &mut scratch.order,
            &mut scratch.fronts,
            &mut scratch.unique_objs,
            &mut scratch.keep,
        )?;

        // compact survivors through the swap buffers (no reallocation)
        scratch.next_population.clear();
        scratch
            .next_population
            .extend(scratch.keep.iter().map(|&i| population[i].clone()));
        std::mem::swap(population, &mut scratch.next_population);
        scratch.next_fitness.clear();
        if fitness.has_scores() {
            scratch
                .next_fitness
                .scores
                .extend(scratch.keep.iter().map(|&i| fitness.scores[i]));
        }
        if fitness.has_objectives() {
            scratch
                .next_fitness
                .objectives
                .extend(scratch.keep.iter().map(|&i| fitness.objectives[i].clone()));
        }
        std::mem::swap(&mut fitness.scores, &mut scratch.next_fitness.scores);
        std::mem::swap(
            &mut fitness.objectives,
            &mut scratch.next_fitness.objectives,
        );
        Ok(())
    }

    /// Selection keys of the current population (scores, or the rank/
    /// crowding key for objective-only fitness), written into
    /// `scratch.keys` when computed.
    fn current_keys(&mut self) -> Result<&[f64]> {
        match self.fitness.kind {
            Some(FitnessKind::Scores | FitnessKind::Ranked) => Ok(&self.fitness.scores),
            Some(FitnessKind::Objectives) => {
                objective_keys_into(
                    &self.fitness.objectives,
                    &mut self.moo,
                    &mut self.scratch.fronts,
                    &mut self.scratch.keys,
                )?;
                Ok(&self.scratch.keys)
            }
            None => Err(SearchError::Config("island not yet evaluated".into())),
        }
    }

    /// The epoch-barrier message: top-`migrants` elites by selection key
    /// (crowded rank for objective fitness) plus the island's current
    /// non-dominated front.
    fn emigration(&mut self, cfg: &IslandConfig) -> Result<Emigration> {
        self.current_keys()?;
        let keys: &[f64] = match self.fitness.kind {
            Some(FitnessKind::Scores | FitnessKind::Ranked) => &self.fitness.scores,
            _ => &self.scratch.keys,
        };
        let mut order: Vec<usize> = (0..self.population.len()).collect();
        order.sort_unstable_by(|&a, &b| keys[b].total_cmp(&keys[a]).then_with(|| a.cmp(&b)));
        let elites = order
            .iter()
            .take(cfg.migrants)
            .map(|&i| Migrant {
                arch: self.population[i].clone(),
                score: if self.fitness.has_scores() {
                    self.fitness.scores[i]
                } else {
                    keys[i]
                },
                objectives: self
                    .fitness
                    .has_objectives()
                    .then(|| Arc::clone(&self.fitness.objectives[i])),
            })
            .collect();
        let mut front = Vec::new();
        if self.fitness.has_objectives() {
            for &i in self.moo.pareto_front(&self.fitness.objectives)? {
                front.push((
                    self.population[i].clone(),
                    self.fitness.objectives[i].as_ref().clone(),
                ));
            }
        }
        Ok(Emigration {
            from: self.id,
            elites,
            front,
        })
    }

    /// Applies one incoming elite batch: duplicates of current members
    /// are skipped; accepted migrants replace the worst members by
    /// selection key (worst-first, deterministic tie-break). Returns the
    /// number accepted.
    fn immigrate(&mut self, migrants: &[Migrant]) -> Result<u64> {
        if migrants.is_empty() {
            return Ok(0);
        }
        self.current_keys()?;
        let keys: &[f64] = match self.fitness.kind {
            Some(FitnessKind::Scores | FitnessKind::Ranked) => &self.fitness.scores,
            _ => &self.scratch.keys,
        };
        // worst-first replacement order over the current population
        let mut order: Vec<usize> = (0..self.population.len()).collect();
        order.sort_unstable_by(|&a, &b| keys[a].total_cmp(&keys[b]).then_with(|| a.cmp(&b)));
        let mut slots = order.into_iter();
        self.scratch.seen.clear();
        for a in &self.population {
            self.scratch.seen.insert((a.space(), a.index()));
        }
        let mut accepted = 0;
        for m in migrants {
            let key = (m.arch.space(), m.arch.index());
            if !self.scratch.seen.insert(key) {
                continue;
            }
            let Some(slot) = slots.next() else { break };
            self.population[slot] = m.arch.clone();
            if self.fitness.has_scores() {
                self.fitness.scores[slot] = m.score;
            }
            if self.fitness.has_objectives() {
                let objs = m.objectives.as_ref().ok_or_else(|| {
                    SearchError::Config("migrant missing objectives for this fitness kind".into())
                })?;
                self.fitness.objectives[slot] = Arc::clone(objs);
            }
            accepted += 1;
        }
        Ok(accepted)
    }
}

/// `-(rank) + crowding tie-break` selection keys for objective-only
/// fitness, written into `keys` (mirrors the single-population MOEA).
fn objective_keys_into(
    objectives: &[SharedObjectives],
    moo: &mut MooWorkspace,
    fronts: &mut Fronts,
    keys: &mut Vec<f64>,
) -> Result<()> {
    moo.fast_non_dominated_sort_into(objectives, fronts)?;
    keys.clear();
    keys.resize(objectives.len(), 0.0);
    for rank in 0..fronts.len() {
        let front = fronts.front(rank);
        let crowd = moo.crowding_distance_of(objectives, front)?;
        for (slot, &i) in front.iter().enumerate() {
            let tie = 1.0 - 1.0 / (1.0 + crowd[slot].min(1e12));
            keys[i] = -(rank as f64) + tie * 0.5;
        }
    }
    Ok(())
}

/// Elitist survivor selection into `keep` (same semantics as the
/// single-population MOEA: dedup by architecture identity, then top-k by
/// score / score-gated crowding / NSGA-II fronts). `sort_unstable` with
/// explicit index tie-breaks reproduces the stable-sort order without
/// the stable sort's scratch allocation.
#[allow(clippy::too_many_arguments)]
fn survivors_into(
    merged: &[Architecture],
    fitness: &IslandFitness,
    kind: FitnessKind,
    k: usize,
    moo: &mut MooWorkspace,
    seen: &mut HashSet<(SearchSpaceId, u128)>,
    pool: &mut Vec<usize>,
    order: &mut Vec<usize>,
    fronts: &mut Fronts,
    unique_objs: &mut Vec<SharedObjectives>,
    keep: &mut Vec<usize>,
) -> Result<()> {
    seen.clear();
    pool.clear();
    pool.extend((0..merged.len()).filter(|&i| seen.insert((merged[i].space(), merged[i].index()))));
    keep.clear();
    match kind {
        FitnessKind::Scores => {
            let scores = &fitness.scores;
            pool.sort_unstable_by(|&a, &b| scores[b].total_cmp(&scores[a]).then_with(|| a.cmp(&b)));
            keep.extend(pool.iter().take(k));
        }
        FitnessKind::Ranked => {
            // score gates front membership (top k + 25 %); crowding on the
            // same call's predicted objectives trims the margin
            let scores = &fitness.scores;
            pool.sort_unstable_by(|&a, &b| scores[b].total_cmp(&scores[a]).then_with(|| a.cmp(&b)));
            pool.truncate(k + k / 4 + 1);
            if pool.len() <= k {
                keep.extend(pool.iter());
                return Ok(());
            }
            let crowd = moo.crowding_distance_of(&fitness.objectives, pool)?;
            order.clear();
            order.extend(0..pool.len());
            order.sort_unstable_by(|&a, &b| crowd[b].total_cmp(&crowd[a]).then_with(|| a.cmp(&b)));
            keep.extend(order.iter().take(k).map(|&slot| pool[slot]));
        }
        FitnessKind::Objectives => {
            unique_objs.clear();
            unique_objs.extend(pool.iter().map(|&i| Arc::clone(&fitness.objectives[i])));
            moo.fast_non_dominated_sort_into(&*unique_objs, fronts)?;
            for rank in 0..fronts.len() {
                let front = fronts.front(rank);
                if keep.len() + front.len() <= k {
                    keep.extend(front.iter().map(|&i| pool[i]));
                } else {
                    let crowd = moo.crowding_distance_of(&*unique_objs, front)?;
                    order.clear();
                    order.extend(0..front.len());
                    order.sort_unstable_by(|&a, &b| {
                        crowd[b].total_cmp(&crowd[a]).then_with(|| a.cmp(&b))
                    });
                    let room = k - keep.len();
                    keep.extend(order.iter().take(room).map(|&slot| pool[front[slot]]));
                    break;
                }
            }
        }
    }
    Ok(())
}

/// A single island driven generation-by-generation. Benchmark and
/// allocation-test surface only — the stable API is [`IslandSearch`].
#[doc(hidden)]
pub struct IslandHarness {
    config: IslandConfig,
    island: Island,
}

impl IslandHarness {
    /// Builds island 0 of `config` and evaluates its initial population.
    #[doc(hidden)]
    pub fn new(config: IslandConfig, evaluator: Box<dyn Evaluator + Send>) -> Result<Self> {
        let config = IslandConfig {
            islands: 1,
            ..config
        };
        config.validate()?;
        let mut slot = Some(evaluator);
        let mut state = fresh_state(&config, |_| slot.take().expect("one island"))?;
        let island = state.islands.remove(0);
        Ok(Self { config, island })
    }

    /// Runs one generation (selection, variation, evaluation, survivor
    /// selection) — the warm inner loop the counting-allocator harness
    /// measures.
    #[doc(hidden)]
    pub fn step(&mut self) -> Result<()> {
        self.island.step(&self.config)
    }

    /// Evaluations performed so far.
    #[doc(hidden)]
    pub fn evaluations(&self) -> u64 {
        self.island.evaluations
    }
}

/// One member of the final global archive.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveMember {
    /// The architecture.
    pub arch: Architecture,
    /// Its minimisation objectives.
    pub objectives: Vec<f64>,
}

/// Outcome of an island search run.
#[derive(Debug, Clone)]
pub struct IslandSearchResult {
    /// Final population of every island, in island order.
    pub populations: Vec<Vec<Architecture>>,
    /// The global non-dominated archive (sorted by objectives).
    pub archive: Vec<ArchiveMember>,
    /// Exact hypervolume of the archive against the run's fixed
    /// reference point (2-objective runs only).
    pub hypervolume: Option<f64>,
    /// Generations each island completed.
    pub generations: usize,
    /// Epochs (migration periods) completed.
    pub epochs: usize,
    /// Total architecture evaluations across all islands.
    pub evaluations: u64,
    /// Migrants accepted across all migrations.
    pub migrants_accepted: u64,
    /// Evaluator display name.
    pub evaluator: String,
    /// Wall-clock duration of the run (excludes pre-resume time).
    pub wall_time: Duration,
}

/// Snapshot format version (checked on load).
pub const SNAPSHOT_VERSION: u32 = 1;

/// Versioned on-disk form of a paused island search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchSnapshot {
    /// Format version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The run's configuration (a resume replays exactly this).
    pub config: IslandConfig,
    /// Completed epochs.
    pub epoch: usize,
    /// Completed generations per island.
    pub generations_done: usize,
    /// Per-island state, in island order.
    pub islands: Vec<IslandSnapshot>,
    /// Every architecture ever accepted into the archive (tag-indexed).
    pub elites: Vec<EliteSnapshot>,
    /// Current archive members as tags into `elites`, in archive
    /// (lexicographic-objective) order.
    pub archive_tags: Vec<u64>,
    /// The fixed hypervolume reference point, once established.
    pub hv_reference: Option<Vec<f64>>,
    /// Migrants accepted so far.
    pub migrants_accepted: u64,
}

/// One archived elite in a snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EliteSnapshot {
    /// The architecture.
    pub arch: Architecture,
    /// Its minimisation objectives.
    pub objectives: Vec<f64>,
}

/// Per-island state in a snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IslandSnapshot {
    /// Island id (ring position).
    pub id: usize,
    /// SplitMix64 state word.
    pub rng_state: u64,
    /// Current population.
    pub population: Vec<Architecture>,
    /// Fitness shape carried by this island.
    pub kind: FitnessKind,
    /// Population scores (empty for objective-only fitness).
    pub scores: Vec<f64>,
    /// Population objectives (empty for score-only fitness).
    pub objectives: Vec<Vec<f64>>,
    /// The evaluator's memo-cache shard, sorted by key.
    pub cache: Vec<CacheEntry>,
    /// Simulated seconds charged so far.
    pub simulated_s: f64,
    /// Evaluations performed so far.
    pub evaluations: u64,
}

/// Full in-flight state of a run between epochs.
struct RunState {
    islands: Vec<Island>,
    epoch: usize,
    generations_done: usize,
    archive: ParetoArchive,
    elites: Vec<(Architecture, Vec<f64>)>,
    hv: Option<IncrementalHv2>,
    hv_reference: Option<Vec<f64>>,
    migrants_accepted: u64,
}

/// The island-model search (see the [module docs](self)).
#[derive(Debug)]
pub struct IslandSearch {
    config: IslandConfig,
}

impl IslandSearch {
    /// Creates a search with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::Config`] for degenerate settings.
    pub fn new(config: IslandConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration.
    pub fn config(&self) -> &IslandConfig {
        &self.config
    }

    /// Runs the search. `factory` builds one evaluator per island
    /// (islands own their evaluators — give each its own cache shard, or
    /// share one `Arc<ScoreCache>`; either way results are identical
    /// because the model is deterministic).
    ///
    /// # Errors
    ///
    /// Propagates evaluator and snapshot-write failures.
    pub fn run<F>(&self, factory: F) -> Result<IslandSearchResult>
    where
        F: FnMut(usize) -> Box<dyn Evaluator + Send>,
    {
        let span = hwpr_obs::span("search.islands");
        let state = fresh_state(&self.config, factory)?;
        run_state(&self.config, state, &span)
    }

    /// Continues a checkpointed run to completion. The snapshot's
    /// embedded config governs; `factory` rebuilds the per-island
    /// evaluators (their cache shards are restored from the snapshot).
    /// The finished result is bit-identical to the uninterrupted run.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::Config`] for an unsupported snapshot
    /// version or malformed state; propagates evaluator failures.
    pub fn resume<F>(snapshot: &SearchSnapshot, factory: F) -> Result<IslandSearchResult>
    where
        F: FnMut(usize) -> Box<dyn Evaluator + Send>,
    {
        let config = snapshot.config.clone();
        config.validate()?;
        let span = hwpr_obs::span("search.islands");
        let state = restore_state(snapshot, factory)?;
        run_state(&config, state, &span)
    }

    /// Reads and version-checks a snapshot written during a run.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::Config`] on I/O/parse failure or a version
    /// mismatch.
    pub fn load_snapshot(path: impl AsRef<Path>) -> Result<SearchSnapshot> {
        let snapshot: SearchSnapshot = hwpr_core::persist::read_json_file(path)
            .map_err(|e| SearchError::Config(format!("snapshot: {e}")))?;
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(SearchError::Config(format!(
                "unsupported snapshot version {} (expected {SNAPSHOT_VERSION})",
                snapshot.version
            )));
        }
        Ok(snapshot)
    }
}

fn fresh_state<F>(config: &IslandConfig, mut factory: F) -> Result<RunState>
where
    F: FnMut(usize) -> Box<dyn Evaluator + Send>,
{
    let mut islands = Vec::with_capacity(config.islands);
    for id in 0..config.islands {
        let mut rng = SplitMix64::stream(config.seed, id as u64);
        let population: Vec<Architecture> = (0..config.population)
            .map(|i| {
                let space = config.spaces[i % config.spaces.len()];
                Architecture::random(space, &mut rng)
            })
            .collect();
        let mut evaluator = factory(id);
        let mut clock = SearchClock::unbounded();
        let batch = evaluator.evaluate(&population, &mut clock)?;
        let mut fitness = IslandFitness::default();
        fitness.absorb(batch)?;
        let evaluations = population.len() as u64;
        islands.push(Island {
            id,
            rng,
            population,
            fitness,
            evaluator,
            moo: MooWorkspace::new(),
            clock,
            scratch: IslandScratch::new(),
            evaluations,
        });
    }
    Ok(RunState {
        islands,
        epoch: 0,
        generations_done: 0,
        archive: ParetoArchive::new(),
        elites: Vec::new(),
        hv: None,
        hv_reference: None,
        migrants_accepted: 0,
    })
}

fn restore_state<F>(snapshot: &SearchSnapshot, mut factory: F) -> Result<RunState>
where
    F: FnMut(usize) -> Box<dyn Evaluator + Send>,
{
    if snapshot.version != SNAPSHOT_VERSION {
        return Err(SearchError::Config(format!(
            "unsupported snapshot version {} (expected {SNAPSHOT_VERSION})",
            snapshot.version
        )));
    }
    if snapshot.islands.len() != snapshot.config.islands {
        return Err(SearchError::Config(
            "snapshot island count disagrees with its config".into(),
        ));
    }
    let mut islands = Vec::with_capacity(snapshot.islands.len());
    for isl in &snapshot.islands {
        let mut evaluator = factory(isl.id);
        evaluator.restore_cache(&isl.cache);
        let mut clock = SearchClock::unbounded();
        clock.charge_simulated(isl.simulated_s);
        let fitness = IslandFitness {
            kind: Some(isl.kind),
            scores: isl.scores.clone(),
            objectives: isl.objectives.iter().cloned().map(Arc::new).collect(),
        };
        islands.push(Island {
            id: isl.id,
            rng: SplitMix64::from_state(isl.rng_state),
            population: isl.population.clone(),
            fitness,
            evaluator,
            moo: MooWorkspace::new(),
            clock,
            scratch: IslandScratch::new(),
            evaluations: isl.evaluations,
        });
    }
    let elites: Vec<(Architecture, Vec<f64>)> = snapshot
        .elites
        .iter()
        .map(|e| (e.arch.clone(), e.objectives.clone()))
        .collect();
    let mut archive = ParetoArchive::new();
    for &tag in &snapshot.archive_tags {
        let (_, objs) = elites
            .get(tag as usize)
            .ok_or_else(|| SearchError::Config("snapshot archive tag out of range".into()))?;
        archive.insert(objs, tag)?;
    }
    let mut hv = None;
    if let Some(reference) = &snapshot.hv_reference {
        if reference.len() == 2 {
            let mut archive_hv = IncrementalHv2::new(reference)?;
            for member in archive.members() {
                let (x, y) = (member.objectives[0], member.objectives[1]);
                if x <= reference[0] && y <= reference[1] {
                    archive_hv.insert(x, y)?;
                }
            }
            hv = Some(archive_hv);
        }
    }
    Ok(RunState {
        islands,
        epoch: snapshot.epoch,
        generations_done: snapshot.generations_done,
        archive,
        elites,
        hv,
        hv_reference: snapshot.hv_reference.clone(),
        migrants_accepted: snapshot.migrants_accepted,
    })
}

/// Worker lanes for this run: the `workers` override, else one lane per
/// island up to the machine parallelism. Purely an executor choice —
/// results do not depend on it.
fn effective_workers(config: &IslandConfig) -> usize {
    let lanes = if config.workers > 0 {
        config.workers
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    };
    lanes.min(config.islands).max(1)
}

/// Advances one island through a whole epoch and pushes its barrier
/// message; the worker-lane body.
fn advance_island(
    island: &mut Island,
    config: &IslandConfig,
    generations: usize,
    channel: &MigrationChannel<Emigration>,
    root: hwpr_obs::SpanContext,
) -> Result<()> {
    let id = island.id;
    let _span = hwpr_obs::span_with_parent_labeled("search.island", root, || id.to_string());
    for _ in 0..generations {
        let timer = crate::telemetry::island_gen_timer();
        island.step(config)?;
        timer.finish();
    }
    channel.push(island.emigration(config)?);
    Ok(())
}

fn run_state(
    config: &IslandConfig,
    mut state: RunState,
    span: &hwpr_obs::Span,
) -> Result<IslandSearchResult> {
    let root = span.context();
    let started = Instant::now();
    let lanes = effective_workers(config);
    while state.generations_done < config.generations {
        let gens = config
            .migration_every
            .min(config.generations - state.generations_done);
        let channel = MigrationChannel::new();
        if lanes <= 1 {
            for island in &mut state.islands {
                advance_island(island, config, gens, &channel, root)?;
            }
        } else {
            let chunk = state.islands.len().div_ceil(lanes);
            std::thread::scope(|scope| -> Result<()> {
                let mut handles = Vec::new();
                for islands in state.islands.chunks_mut(chunk) {
                    let channel = &channel;
                    handles.push(scope.spawn(move || -> Result<()> {
                        for island in islands {
                            advance_island(island, config, gens, channel, root)?;
                        }
                        Ok(())
                    }));
                }
                for handle in handles {
                    handle.join().expect("island worker panicked")?;
                }
                Ok(())
            })?;
        }
        state.generations_done += gens;

        // the only shared-state mutations of the epoch happen here, on
        // the coordinator, in island-id order — lane-count independent
        let mut messages = channel.drain();
        messages.sort_unstable_by_key(|m| m.from);
        merge_fronts(&mut state, &messages)?;
        if state.generations_done < config.generations {
            let _span = hwpr_obs::span("search.migration");
            let n = state.islands.len();
            let mut accepted = 0;
            for i in 0..n {
                let source = (i + n - 1) % n;
                let elites = &messages[source].elites;
                accepted += state.islands[i].immigrate(elites)?;
            }
            if hwpr_obs::enabled() && accepted > 0 {
                hwpr_obs::metrics::registry()
                    .counter("search.migrants")
                    .add(accepted);
            }
            state.migrants_accepted += accepted;
        }
        state.epoch += 1;
        record_epoch(&state);

        if config.checkpoint_every > 0
            && state.generations_done < config.generations
            && state.epoch.is_multiple_of(config.checkpoint_every)
        {
            let path = config
                .checkpoint_path
                .as_ref()
                .expect("validated: checkpoint_every needs a path");
            let _span = hwpr_obs::span("search.checkpoint");
            let snapshot = snapshot_state(config, &state);
            hwpr_core::persist::write_json_file(&snapshot, path)
                .map_err(|e| SearchError::Config(format!("checkpoint: {e}")))?;
        }
    }

    let hypervolume = state.hv.as_mut().map(IncrementalHv2::recompute);
    let archive = state
        .archive
        .members()
        .iter()
        .map(|m| ArchiveMember {
            arch: state.elites[m.tag as usize].0.clone(),
            objectives: m.objectives.clone(),
        })
        .collect();
    Ok(IslandSearchResult {
        populations: state.islands.iter().map(|i| i.population.clone()).collect(),
        archive,
        hypervolume,
        generations: state.generations_done,
        epochs: state.epoch,
        evaluations: state.islands.iter().map(|i| i.evaluations).sum(),
        migrants_accepted: state.migrants_accepted,
        evaluator: state
            .islands
            .first()
            .map_or_else(String::new, |i| i.evaluator.name()),
        wall_time: started.elapsed(),
    })
}

/// Folds every island's epoch front into the global archive (messages
/// arrive pre-sorted by island id) and maintains the incremental
/// hypervolume for two-objective runs.
fn merge_fronts(state: &mut RunState, messages: &[Emigration]) -> Result<()> {
    // fix the hypervolume reference from the first merged front set
    if state.hv_reference.is_none() {
        let points: Vec<Vec<f64>> = messages
            .iter()
            .flat_map(|m| m.front.iter().map(|(_, objs)| objs.clone()))
            .collect();
        if !points.is_empty() && points[0].len() == 2 {
            let spread = points
                .iter()
                .flat_map(|p| p.iter().map(|v| v.abs()))
                .fold(0.0f64, f64::max);
            if let Ok(reference) = nadir_reference_point(&points, 0.1 * spread.max(1e-9)) {
                state.hv = IncrementalHv2::new(&reference).ok();
                state.hv_reference = Some(reference);
            }
        }
    }
    for message in messages {
        for (arch, objs) in &message.front {
            let tag = state.elites.len() as u64;
            if state.archive.insert(objs, tag)? {
                state.elites.push((arch.clone(), objs.clone()));
                if let (Some(hv), Some(reference)) = (&mut state.hv, &state.hv_reference) {
                    // points past the fixed reference are clipped out of
                    // the hypervolume, matching the generation telemetry
                    if objs[0] <= reference[0] && objs[1] <= reference[1] {
                        hv.insert(objs[0], objs[1])?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Emits the `search.epoch` run record (a no-op with telemetry off).
fn record_epoch(state: &RunState) {
    if !hwpr_obs::enabled() {
        return;
    }
    let hv = state.hv.as_ref().map(IncrementalHv2::hypervolume);
    hwpr_obs::record_with("search.epoch", || {
        let mut fields = vec![
            hwpr_obs::field("epoch", state.epoch as u64),
            hwpr_obs::field("generations", state.generations_done as u64),
            hwpr_obs::field("archive_size", state.archive.len() as u64),
            hwpr_obs::field("migrants", state.migrants_accepted),
            hwpr_obs::field(
                "evaluations",
                state.islands.iter().map(|i| i.evaluations).sum::<u64>(),
            ),
        ];
        if let Some(hv) = hv {
            fields.push(hwpr_obs::field("hypervolume", hv));
        }
        fields
    });
}

/// The current state as a versioned snapshot document.
fn snapshot_state(config: &IslandConfig, state: &RunState) -> SearchSnapshot {
    SearchSnapshot {
        version: SNAPSHOT_VERSION,
        config: config.clone(),
        epoch: state.epoch,
        generations_done: state.generations_done,
        islands: state
            .islands
            .iter()
            .map(|island| IslandSnapshot {
                id: island.id,
                rng_state: island.rng.state(),
                population: island.population.clone(),
                kind: island.fitness.kind.expect("evaluated before any epoch"),
                scores: island.fitness.scores.clone(),
                objectives: island
                    .fitness
                    .objectives
                    .iter()
                    .map(|o| o.as_ref().clone())
                    .collect(),
                cache: island.evaluator.cache_snapshot(),
                simulated_s: island.clock.simulated_elapsed().as_secs_f64(),
                evaluations: island.evaluations,
            })
            .collect(),
        elites: state
            .elites
            .iter()
            .map(|(arch, objectives)| EliteSnapshot {
                arch: arch.clone(),
                objectives: objectives.clone(),
            })
            .collect(),
        archive_tags: state.archive.members().iter().map(|m| m.tag).collect(),
        hv_reference: state.hv_reference.clone(),
        migrants_accepted: state.migrants_accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::ScoreEvaluator;
    use hwpr_nasbench::SearchSpaceId;

    fn score_factory() -> Box<dyn Evaluator + Send> {
        // a pure function of the architecture: deterministic, cheap, and
        // different across the space
        Box::new(ScoreEvaluator::from_fn(
            "index-score",
            Box::new(|archs| {
                Ok(archs
                    .iter()
                    .map(|a| (a.index() % 9973) as f64 / 9973.0)
                    .collect())
            }),
        ))
    }

    /// Objective-vector evaluator: two antagonistic pure functions of the
    /// architecture index, exercising the NSGA-II survivor path and the
    /// global archive merge.
    struct ObjectiveEvaluator;

    impl Evaluator for ObjectiveEvaluator {
        fn name(&self) -> String {
            "index-objectives".to_string()
        }

        fn evaluate(
            &mut self,
            archs: &[Architecture],
            _clock: &mut SearchClock,
        ) -> Result<crate::evaluator::Fitness> {
            let objs = archs
                .iter()
                .map(|a| {
                    let x = (a.index() % 9973) as f64 / 9973.0;
                    Arc::new(vec![x, (1.0 - x) * (1.0 + (a.index() % 7) as f64 * 0.01)])
                })
                .collect();
            Ok(crate::evaluator::Fitness::Objectives(objs))
        }

        fn calls_per_arch(&self) -> usize {
            1
        }
    }

    fn base_config() -> IslandConfig {
        IslandConfig {
            islands: 3,
            generations: 5,
            ..IslandConfig::small(SearchSpaceId::NasBench201)
        }
    }

    #[test]
    fn config_validation_rejects_degenerate_settings() {
        let ok = base_config();
        assert!(IslandSearch::new(ok.clone()).is_ok());
        for breakage in [
            |c: &mut IslandConfig| c.islands = 0,
            |c: &mut IslandConfig| c.population = 1,
            |c: &mut IslandConfig| c.migration_every = 0,
            |c: &mut IslandConfig| c.migrants = c.population,
            |c: &mut IslandConfig| c.tournament = 0,
            |c: &mut IslandConfig| c.spaces.clear(),
            |c: &mut IslandConfig| c.mutation_rate = 1.5,
            |c: &mut IslandConfig| c.checkpoint_every = 1,
        ] {
            let mut cfg = ok.clone();
            breakage(&mut cfg);
            assert!(
                matches!(IslandSearch::new(cfg), Err(SearchError::Config(_))),
                "degenerate config accepted"
            );
        }
    }

    #[test]
    fn search_env_specs_warn_and_default_on_junk() {
        // all four search knobs: junk, zero and out-of-range specs fall
        // back to the documented defaults instead of erroring
        assert_eq!(spec::islands("4"), 4);
        assert_eq!(spec::islands(" 8 "), 8);
        assert_eq!(spec::islands("0"), 1);
        assert_eq!(spec::islands("-2"), 1);
        assert_eq!(spec::islands("999999"), 1);
        assert_eq!(spec::islands("many"), 1);
        assert_eq!(spec::migration("6"), 6);
        assert_eq!(spec::migration("0"), 4);
        assert_eq!(spec::migration("junk"), 4);
        assert_eq!(spec::checkpoint("3"), 3);
        assert_eq!(spec::checkpoint("0"), 0);
        assert_eq!(spec::checkpoint("-1"), 0);
        assert_eq!(spec::checkpoint("nope"), 0);
        assert_eq!(crate::evaluator::threads_from_spec("4"), 4);
        assert_eq!(crate::evaluator::threads_from_spec("0"), 1);
        assert_eq!(crate::evaluator::threads_from_spec("lots"), 1);
    }

    #[test]
    fn score_fitness_search_runs_and_improves() {
        let cfg = base_config();
        let result = IslandSearch::new(cfg.clone())
            .unwrap()
            .run(|_| score_factory())
            .unwrap();
        assert_eq!(result.populations.len(), cfg.islands);
        assert!(result.populations.iter().all(|p| p.len() == cfg.population));
        assert_eq!(result.generations, cfg.generations);
        assert_eq!(result.epochs, cfg.generations.div_ceil(cfg.migration_every));
        assert!(result.evaluations > 0);
        // score-only fitness has no objective vectors: no archive, no hv
        assert!(result.archive.is_empty());
        assert!(result.hypervolume.is_none());
        assert_eq!(result.evaluator, "index-score");
    }

    #[test]
    fn objective_fitness_fills_the_global_archive() {
        let result = IslandSearch::new(base_config())
            .unwrap()
            .run(|_| Box::new(ObjectiveEvaluator))
            .unwrap();
        assert!(!result.archive.is_empty(), "archive never populated");
        // archive members are mutually non-dominated and sorted
        for pair in result.archive.windows(2) {
            assert!(pair[0].objectives <= pair[1].objectives);
        }
        let hv = result.hypervolume.expect("2-objective run records hv");
        assert!(hv.is_finite() && hv >= 0.0);
    }

    #[test]
    fn results_are_identical_across_worker_lane_counts() {
        let runs: Vec<IslandSearchResult> = [1, 2, 8]
            .into_iter()
            .map(|workers| {
                let cfg = IslandConfig {
                    workers,
                    ..base_config()
                };
                IslandSearch::new(cfg)
                    .unwrap()
                    .run(|_| Box::new(ObjectiveEvaluator))
                    .unwrap()
            })
            .collect();
        for other in &runs[1..] {
            assert_eq!(runs[0].populations, other.populations);
            assert_eq!(runs[0].archive, other.archive);
            assert_eq!(runs[0].hypervolume, other.hypervolume);
            assert_eq!(runs[0].migrants_accepted, other.migrants_accepted);
        }
    }

    #[test]
    fn migration_spreads_elites_round_the_ring() {
        // with migration every generation and identical scoring, elites
        // must actually move: accepted migrants is non-zero
        let cfg = IslandConfig {
            migration_every: 1,
            generations: 6,
            ..base_config()
        };
        let result = IslandSearch::new(cfg)
            .unwrap()
            .run(|_| score_factory())
            .unwrap();
        assert!(result.migrants_accepted > 0, "no migrant ever accepted");
    }
}
