//! Multi-layer LSTM encoder.

use crate::params::{Binder, ParamId, Params};
use crate::{NnError, Result};
use hwpr_autograd::Var;
use hwpr_tensor::{Init, Matrix};
use std::mem;

/// One LSTM layer's parameters: input, recurrent and bias weights packed
/// as `[i f g o]` gate blocks.
#[derive(Debug, Clone)]
struct LstmCell {
    w_ih: ParamId,
    w_hh: ParamId,
    bias: ParamId,
}

/// Stacked LSTM used as the paper's latency encoder (2 layers, 225 hidden
/// units over embedded architecture tokens).
///
/// # Examples
///
/// ```
/// use hwpr_autograd::Tape;
/// use hwpr_nn::layers::Lstm;
/// use hwpr_nn::{Binder, Params};
/// use hwpr_tensor::Matrix;
///
/// let mut params = Params::new();
/// let lstm = Lstm::new(&mut params, "enc", 4, 8, 2, 11);
/// let mut tape = Tape::new();
/// let mut binder = Binder::new(&mut tape, &params);
/// let steps: Vec<_> = (0..3).map(|_| binder.input(Matrix::ones(2, 4))).collect();
/// let h = lstm.forward(&mut binder, &steps)?;
/// assert_eq!(tape.value(h).shape(), (2, 8));
/// # Ok::<(), hwpr_nn::NnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Lstm {
    cells: Vec<LstmCell>,
    input_dim: usize,
    hidden_dim: usize,
}

impl Lstm {
    /// Registers an LSTM with `layers` stacked cells.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0`.
    pub fn new(
        params: &mut Params,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
        layers: usize,
        seed: u64,
    ) -> Self {
        assert!(layers > 0, "LSTM needs at least one layer");
        let mut cells = Vec::with_capacity(layers);
        for l in 0..layers {
            let in_dim = if l == 0 { input_dim } else { hidden_dim };
            let w_ih = params.add(
                &format!("{name}.l{l}.w_ih"),
                in_dim,
                4 * hidden_dim,
                Init::Xavier,
                seed.wrapping_add(3 * l as u64),
            );
            let w_hh = params.add(
                &format!("{name}.l{l}.w_hh"),
                hidden_dim,
                4 * hidden_dim,
                Init::Xavier,
                seed.wrapping_add(3 * l as u64 + 1),
            );
            // forget-gate bias starts at 1 to ease gradient flow early on
            let mut b = Matrix::zeros(1, 4 * hidden_dim);
            for c in hidden_dim..2 * hidden_dim {
                b.set(0, c, 1.0);
            }
            let bias = params.add_matrix(&format!("{name}.l{l}.bias"), b);
            cells.push(LstmCell { w_ih, w_hh, bias });
        }
        Self {
            cells,
            input_dim,
            hidden_dim,
        }
    }

    /// Input feature dimension of the first layer.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden state dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Number of stacked layers.
    pub fn layers(&self) -> usize {
        self.cells.len()
    }

    /// Runs the recurrence over `steps` (each `[batch, input_dim]`) and
    /// returns the final hidden state of the top layer (`[batch, hidden]`).
    ///
    /// # Errors
    ///
    /// Returns a config error when `steps` is empty, or a shape error when
    /// step shapes are inconsistent.
    pub fn forward(&self, binder: &mut Binder<'_, '_>, steps: &[Var]) -> Result<Var> {
        let mut out = binder.tape().scratch_vars();
        self.forward_sequence_into(binder, steps, &mut out)?;
        let last = *out
            .last()
            .expect("forward_sequence_into yields one output per step");
        binder.tape().recycle_vars(out);
        Ok(last)
    }

    /// Runs the recurrence and returns the top-layer hidden state after
    /// every step (useful for attention-style pooling).
    ///
    /// Hot loops should prefer [`Lstm::forward_sequence_into`], which reuses
    /// a caller-held buffer instead of returning a fresh `Vec`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Lstm::forward`].
    pub fn forward_sequence(&self, binder: &mut Binder<'_, '_>, steps: &[Var]) -> Result<Vec<Var>> {
        let mut out = Vec::with_capacity(steps.len());
        self.forward_sequence_into(binder, steps, &mut out)?;
        Ok(out)
    }

    /// Runs the recurrence, writing the top-layer hidden state of every step
    /// into `out` (cleared first).
    ///
    /// Each step of each layer is a single fused tape node: the layer's
    /// `W_ih`/`W_hh` weights are stacked once per pass
    /// ([`hwpr_autograd::Tape::concat_rows`]) so all four gates come from
    /// one `[batch, 4*hidden]` GEMM, and the hidden/cell states thread
    /// through the steps as one packed `[h | c]` value. Layer outputs are
    /// double-buffered through `out` and a pooled scratch vector, so no
    /// per-layer step list is cloned.
    ///
    /// # Errors
    ///
    /// Returns a config error when `steps` is empty, or a shape error when
    /// step shapes are inconsistent.
    pub fn forward_sequence_into(
        &self,
        binder: &mut Binder<'_, '_>,
        steps: &[Var],
        out: &mut Vec<Var>,
    ) -> Result<()> {
        if steps.is_empty() {
            return Err(NnError::Config("LSTM received an empty sequence".into()));
        }
        let batch = binder.tape().value(steps[0]).rows();
        let h = self.hidden_dim;
        out.clear();
        let mut scratch = binder.tape().scratch_vars();
        for (li, cell) in self.cells.iter().enumerate() {
            let w_ih = binder.param(cell.w_ih);
            let w_hh = binder.param(cell.w_hh);
            let bias = binder.param(cell.bias);
            let tape = binder.tape();
            let w = tape.concat_rows(&[w_ih, w_hh])?;
            let zero_state = tape.alloc(batch, 2 * h);
            let mut hc = tape.leaf(zero_state);
            scratch.clear();
            for i in 0..steps.len() {
                let x = if li == 0 { steps[i] } else { out[i] };
                hc = tape.lstm_step(x, hc, w, bias)?;
                scratch.push(tape.slice_cols(hc, 0, h)?);
            }
            mem::swap(out, &mut scratch);
        }
        binder.tape().recycle_vars(scratch);
        Ok(())
    }

    /// Compiles the recurrence for tape-free inference: each layer's
    /// `[W_ih; W_hh]` gate weight is stacked and packed once — the same
    /// concatenation the taped forward rebuilds (and repacks) every pass.
    pub fn freeze(&self, params: &Params) -> crate::infer::FrozenLstm {
        self.freeze_with(params, hwpr_tensor::Precision::F32)
    }

    /// [`Lstm::freeze`] with the gate weight panels stored at `precision`.
    pub fn freeze_with(
        &self,
        params: &Params,
        precision: hwpr_tensor::Precision,
    ) -> crate::infer::FrozenLstm {
        let stacked = self
            .cells
            .iter()
            .map(|cell| {
                let w = Matrix::concat_rows(&[params.get(cell.w_ih), params.get(cell.w_hh)])
                    .expect("gate weights share 4*hidden columns");
                (w, params.get(cell.bias).clone())
            })
            .collect();
        crate::infer::FrozenLstm::from_parts(stacked, self.input_dim, self.hidden_dim, precision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwpr_autograd::Tape;

    fn run(steps_data: &[Matrix], layers: usize) -> (Tape, Var, Params, Lstm) {
        let mut params = Params::new();
        let lstm = Lstm::new(&mut params, "lstm", steps_data[0].cols(), 5, layers, 3);
        let mut tape = Tape::new();
        let mut binder = Binder::new(&mut tape, &params);
        let steps: Vec<Var> = steps_data.iter().map(|m| binder.input(m.clone())).collect();
        let h = lstm.forward(&mut binder, &steps).unwrap();
        (tape, h, params, lstm)
    }

    #[test]
    fn output_shape() {
        let steps = vec![Matrix::ones(3, 2); 4];
        let (tape, h, _, lstm) = run(&steps, 2);
        assert_eq!(tape.value(h).shape(), (3, 5));
        assert_eq!(lstm.layers(), 2);
        assert_eq!(lstm.input_dim(), 2);
        assert_eq!(lstm.hidden_dim(), 5);
    }

    #[test]
    fn hidden_stays_bounded() {
        // tanh/sigmoid gating keeps |h| < 1
        let steps = vec![Matrix::filled(2, 3, 10.0); 6];
        let (tape, h, _, _) = run(&steps, 1);
        assert!(tape.value(h).as_slice().iter().all(|x| x.abs() < 1.0));
    }

    #[test]
    fn empty_sequence_is_config_error() {
        let mut params = Params::new();
        let lstm = Lstm::new(&mut params, "lstm", 2, 3, 1, 0);
        let mut tape = Tape::new();
        let mut binder = Binder::new(&mut tape, &params);
        assert!(matches!(
            lstm.forward(&mut binder, &[]),
            Err(NnError::Config(_))
        ));
    }

    #[test]
    fn sequence_order_matters() {
        let a = Matrix::filled(1, 2, 1.0);
        let b = Matrix::filled(1, 2, -1.0);
        let (tape1, h1, _, _) = run(&[a.clone(), b.clone()], 1);
        let (tape2, h2, _, _) = run(&[b, a], 1);
        assert_ne!(tape1.value(h1), tape2.value(h2));
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let mut params = Params::new();
        let lstm = Lstm::new(&mut params, "lstm", 2, 4, 2, 3);
        let mut tape = Tape::new();
        let mut binder = Binder::for_training(&mut tape, &params);
        let steps: Vec<Var> = (0..3)
            .map(|i| binder.input(Matrix::filled(2, 2, i as f32 * 0.3 - 0.2)))
            .collect();
        let h = lstm.forward(&mut binder, &steps).unwrap();
        let loss = binder.tape().mean_all(h);
        let grads = binder.finish(loss).unwrap();
        // 2 layers x 3 params each
        assert_eq!(grads.iter().filter(|g| g.is_some()).count(), 6);
        for g in grads.into_iter().flatten() {
            assert!(g.norm() > 0.0, "a parameter received a zero gradient");
        }
    }

    /// The pre-fusion per-gate graph, kept verbatim as a reference for the
    /// differential test below.
    fn unfused_forward_sequence(
        lstm: &Lstm,
        binder: &mut Binder<'_, '_>,
        steps: &[Var],
    ) -> Vec<Var> {
        let batch = binder.tape().value(steps[0]).rows();
        let h = lstm.hidden_dim();
        let mut layer_inputs: Vec<Var> = steps.to_vec();
        let mut outputs = Vec::new();
        for (li, cell) in lstm.cells.iter().enumerate() {
            let w_ih = binder.param(cell.w_ih);
            let w_hh = binder.param(cell.w_hh);
            let bias = binder.param(cell.bias);
            let mut hidden = binder.input(Matrix::zeros(batch, h));
            let mut carry = binder.input(Matrix::zeros(batch, h));
            let mut next_inputs = Vec::with_capacity(layer_inputs.len());
            for &x in &layer_inputs {
                let tape = binder.tape();
                let xi = tape.matmul(x, w_ih).unwrap();
                let hh = tape.matmul(hidden, w_hh).unwrap();
                let pre = tape.add(xi, hh).unwrap();
                let gates = tape.add_bias(pre, bias).unwrap();
                let i_gate = tape.slice_cols(gates, 0, h).unwrap();
                let f_gate = tape.slice_cols(gates, h, 2 * h).unwrap();
                let g_gate = tape.slice_cols(gates, 2 * h, 3 * h).unwrap();
                let o_gate = tape.slice_cols(gates, 3 * h, 4 * h).unwrap();
                let i_act = tape.sigmoid(i_gate);
                let f_act = tape.sigmoid(f_gate);
                let g_act = tape.tanh(g_gate);
                let o_act = tape.sigmoid(o_gate);
                let keep = tape.mul(f_act, carry).unwrap();
                let write = tape.mul(i_act, g_act).unwrap();
                carry = tape.add(keep, write).unwrap();
                let c_act = tape.tanh(carry);
                hidden = tape.mul(o_act, c_act).unwrap();
                next_inputs.push(hidden);
            }
            if li == lstm.cells.len() - 1 {
                outputs = next_inputs.clone();
            }
            layer_inputs = next_inputs;
        }
        outputs
    }

    #[test]
    fn fused_sequence_matches_unfused_reference() {
        let mut params = Params::new();
        let lstm = Lstm::new(&mut params, "lstm", 3, 4, 2, 9);
        let steps_data: Vec<Matrix> = (0..4)
            .map(|i| {
                Matrix::from_vec(
                    2,
                    3,
                    (0..6)
                        .map(|j| (((i * 6 + j) * 23 % 17) as f32 - 8.0) * 0.11)
                        .collect(),
                )
                .unwrap()
            })
            .collect();

        // run each graph on its own tape; finish() aligns the gradients
        let run = |fused: bool| -> (Vec<Matrix>, Vec<Option<Matrix>>) {
            let mut tape = Tape::new();
            let mut binder = Binder::for_training(&mut tape, &params);
            let steps: Vec<Var> = steps_data.iter().map(|m| binder.input(m.clone())).collect();
            let outs = if fused {
                lstm.forward_sequence(&mut binder, &steps).unwrap()
            } else {
                unfused_forward_sequence(&lstm, &mut binder, &steps)
            };
            // loss over every step output so all steps receive gradients
            let mut acc = outs[0];
            for &o in &outs[1..] {
                acc = binder.tape().add(acc, o).unwrap();
            }
            let loss = binder.tape().mean_all(acc);
            let values: Vec<Matrix> = outs
                .iter()
                .map(|&o| binder.tape().value(o).clone())
                .collect();
            let grads = binder.finish(loss).unwrap();
            (values, grads)
        };

        let (fused_vals, fused_grads) = run(true);
        let (plain_vals, plain_grads) = run(false);
        assert_eq!(fused_vals.len(), plain_vals.len());
        for (step, (f, p)) in fused_vals.iter().zip(&plain_vals).enumerate() {
            for (a, b) in f.as_slice().iter().zip(p.as_slice()) {
                assert!(
                    (a - b).abs() < 1e-5,
                    "step {step}: fused {a} vs unfused {b}"
                );
            }
        }
        for (idx, (f, p)) in fused_grads.iter().zip(&plain_grads).enumerate() {
            let (f, p) = (f.as_ref().unwrap(), p.as_ref().unwrap());
            for (a, b) in f.as_slice().iter().zip(p.as_slice()) {
                assert!(
                    (a - b).abs() < 1e-4,
                    "param {idx} ({}): fused grad {a} vs unfused {b}",
                    params.name(params.id_at(idx))
                );
            }
        }
    }

    #[test]
    fn forward_sequence_into_reuses_buffer() {
        let mut params = Params::new();
        let lstm = Lstm::new(&mut params, "lstm", 2, 3, 2, 0);
        let mut tape = Tape::new();
        let mut out = Vec::new();
        for _ in 0..3 {
            tape.reset();
            let mut binder = Binder::new(&mut tape, &params);
            let steps: Vec<Var> = (0..4).map(|_| binder.input(Matrix::ones(1, 2))).collect();
            lstm.forward_sequence_into(&mut binder, &steps, &mut out)
                .unwrap();
            assert_eq!(out.len(), 4);
        }
    }

    #[test]
    fn forward_sequence_len_matches_steps() {
        let mut params = Params::new();
        let lstm = Lstm::new(&mut params, "lstm", 2, 3, 1, 0);
        let mut tape = Tape::new();
        let mut binder = Binder::new(&mut tape, &params);
        let steps: Vec<Var> = (0..5).map(|_| binder.input(Matrix::ones(1, 2))).collect();
        let outs = lstm.forward_sequence(&mut binder, &steps).unwrap();
        assert_eq!(outs.len(), 5);
    }
}
