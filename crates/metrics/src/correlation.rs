//! Rank and linear correlation coefficients.

use crate::{check_pair, MetricError, Result};

/// Kendall rank correlation (τ-b, tie-corrected), `O(n log n)`.
///
/// This is the ranking-quality metric the paper reports for every
/// predictor (Fig. 4, Table I).
///
/// # Errors
///
/// Returns [`MetricError`] when lengths differ, fewer than two samples are
/// given, or either input is entirely tied.
///
/// # Examples
///
/// ```
/// let a = [1.0, 2.0, 3.0];
/// let b = [3.0, 2.0, 1.0];
/// assert_eq!(hwpr_metrics::kendall_tau(&a, &b).unwrap(), -1.0);
/// ```
pub fn kendall_tau(a: &[f32], b: &[f32]) -> Result<f64> {
    check_pair(a, b)?;
    let n = a.len();
    // sort indices by a (ties broken by b) so discordances reduce to
    // counting inversions of the b-sequence
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| a[i].total_cmp(&a[j]).then(b[i].total_cmp(&b[j])));

    // tie counts in a, in b, and jointly
    let tie_pairs = |key: &mut dyn FnMut(usize) -> (u64, u64), order: &[usize]| -> f64 {
        let mut total = 0.0f64;
        let mut run = 1usize;
        for w in 1..order.len() {
            if key(order[w]) == key(order[w - 1]) {
                run += 1;
            } else {
                total += (run * (run - 1) / 2) as f64;
                run = 1;
            }
        }
        total + (run * (run - 1) / 2) as f64
    };

    let mut key_a = |i: usize| (a[i].to_bits() as u64, 0u64);
    let ties_a = tie_pairs(&mut key_a, &idx);
    let mut idx_b = idx.clone();
    idx_b.sort_by(|&i, &j| b[i].total_cmp(&b[j]));
    let mut key_b = |i: usize| (b[i].to_bits() as u64, 0u64);
    let ties_b = tie_pairs(&mut key_b, &idx_b);
    let mut key_ab = |i: usize| (a[i].to_bits() as u64, b[i].to_bits() as u64);
    let ties_ab = tie_pairs(&mut key_ab, &idx);

    let total_pairs = (n * (n - 1) / 2) as f64;
    if ties_a == total_pairs || ties_b == total_pairs {
        return Err(MetricError::ZeroVariance);
    }

    // count discordant pairs = inversions in b along the a-order,
    // counting strict inversions only (ties contribute nothing)
    let seq: Vec<f32> = idx.iter().map(|&i| b[i]).collect();
    let discordant = count_inversions(&seq);

    // concordant - discordant = total - ties_a - ties_b + ties_ab - 2*discordant
    let s = total_pairs - ties_a - ties_b + ties_ab - 2.0 * discordant;
    let denom = ((total_pairs - ties_a) * (total_pairs - ties_b)).sqrt();
    Ok((s / denom).clamp(-1.0, 1.0))
}

/// Counts strict inversions (`i < j` with `seq[i] > seq[j]`) by merge sort.
fn count_inversions(seq: &[f32]) -> f64 {
    fn go(v: &mut Vec<f32>, buf: &mut Vec<f32>, lo: usize, hi: usize) -> f64 {
        if hi - lo <= 1 {
            return 0.0;
        }
        let mid = (lo + hi) / 2;
        let mut inv = go(v, buf, lo, mid) + go(v, buf, mid, hi);
        buf.clear();
        let (mut i, mut j) = (lo, mid);
        while i < mid && j < hi {
            if v[i] <= v[j] {
                buf.push(v[i]);
                i += 1;
            } else {
                inv += (mid - i) as f64;
                buf.push(v[j]);
                j += 1;
            }
        }
        buf.extend_from_slice(&v[i..mid]);
        buf.extend_from_slice(&v[j..hi]);
        v[lo..hi].copy_from_slice(buf);
        inv
    }
    let mut v = seq.to_vec();
    let mut buf = Vec::with_capacity(v.len());
    let n = v.len();
    go(&mut v, &mut buf, 0, n)
}

/// Pearson linear correlation coefficient.
///
/// # Errors
///
/// Returns [`MetricError`] on length mismatch, fewer than two samples, or
/// zero variance in either input.
pub fn pearson(a: &[f32], b: &[f32]) -> Result<f64> {
    check_pair(a, b)?;
    let n = a.len() as f64;
    let mean_a = a.iter().map(|&x| x as f64).sum::<f64>() / n;
    let mean_b = b.iter().map(|&x| x as f64).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let dx = x as f64 - mean_a;
        let dy = y as f64 - mean_b;
        cov += dx * dy;
        var_a += dx * dx;
        var_b += dy * dy;
    }
    if var_a == 0.0 || var_b == 0.0 {
        return Err(MetricError::ZeroVariance);
    }
    Ok((cov / (var_a * var_b).sqrt()).clamp(-1.0, 1.0))
}

/// Spearman rank correlation: Pearson correlation of the (average) ranks.
///
/// # Errors
///
/// Same conditions as [`pearson`].
pub fn spearman(a: &[f32], b: &[f32]) -> Result<f64> {
    check_pair(a, b)?;
    let ra = average_ranks(a);
    let rb = average_ranks(b);
    pearson(&ra, &rb)
}

/// Converts values to average ranks (ties share the mean rank).
fn average_ranks(v: &[f32]) -> Vec<f32> {
    let n = v.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| v[i].total_cmp(&v[j]));
    let mut ranks = vec![0.0f32; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && v[idx[j + 1]] == v[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f32 / 2.0 + 1.0;
        for k in i..=j {
            ranks[idx[k]] = avg;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(n²) reference implementation of τ-b.
    fn kendall_naive(a: &[f32], b: &[f32]) -> f64 {
        let n = a.len();
        let (mut conc, mut disc, mut ties_a, mut ties_b) = (0f64, 0f64, 0f64, 0f64);
        for i in 0..n {
            for j in i + 1..n {
                let da = a[i] - a[j];
                let db = b[i] - b[j];
                if da == 0.0 && db == 0.0 {
                    ties_a += 1.0;
                    ties_b += 1.0;
                } else if da == 0.0 {
                    ties_a += 1.0;
                } else if db == 0.0 {
                    ties_b += 1.0;
                } else if da * db > 0.0 {
                    conc += 1.0;
                } else {
                    disc += 1.0;
                }
            }
        }
        let total = (n * (n - 1) / 2) as f64;
        (conc - disc) / ((total - ties_a) * (total - ties_b)).sqrt()
    }

    #[test]
    fn tau_matches_naive_with_ties() {
        let a = [1.0f32, 2.0, 2.0, 3.0, 5.0, 4.0, 2.5, 2.5];
        let b = [2.0f32, 1.0, 3.0, 3.0, 4.0, 6.0, 2.5, 0.5];
        let fast = kendall_tau(&a, &b).unwrap();
        let naive = kendall_naive(&a, &b);
        assert!((fast - naive).abs() < 1e-9, "{fast} vs {naive}");
    }

    #[test]
    fn tau_matches_naive_pseudorandom() {
        let a: Vec<f32> = (0..64).map(|i| ((i * 37 + 11) % 97) as f32).collect();
        let b: Vec<f32> = (0..64).map(|i| ((i * 53 + 7) % 89) as f32).collect();
        let fast = kendall_tau(&a, &b).unwrap();
        let naive = kendall_naive(&a, &b);
        assert!((fast - naive).abs() < 1e-9, "{fast} vs {naive}");
    }

    #[test]
    fn tau_perfect_and_reversed() {
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let rev = [4.0f32, 3.0, 2.0, 1.0];
        assert_eq!(kendall_tau(&a, &a).unwrap(), 1.0);
        assert_eq!(kendall_tau(&a, &rev).unwrap(), -1.0);
    }

    #[test]
    fn tau_rejects_constant_input() {
        assert_eq!(
            kendall_tau(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).unwrap_err(),
            MetricError::ZeroVariance
        );
    }

    #[test]
    fn pearson_known_values() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [2.0f32, 4.0, 6.0];
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-9);
        let c = [6.0f32, 4.0, 2.0];
        assert!((pearson(&a, &c).unwrap() + 1.0).abs() < 1e-9);
        assert!(pearson(&a, &[5.0, 5.0, 5.0]).is_err());
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let b = [1.0f32, 8.0, 27.0, 64.0];
        assert!((spearman(&a, &b).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn average_ranks_handles_ties() {
        let r = average_ranks(&[10.0, 20.0, 10.0]);
        assert_eq!(r, vec![1.5, 3.0, 1.5]);
    }

    #[test]
    fn inversions_counter() {
        assert_eq!(count_inversions(&[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(count_inversions(&[3.0, 2.0, 1.0]), 3.0);
        assert_eq!(count_inversions(&[2.0, 1.0, 3.0]), 1.0);
        // equal elements are not inversions
        assert_eq!(count_inversions(&[2.0, 2.0, 1.0]), 2.0);
    }
}
