//! `hwpr` — command-line interface to the HW-PR-NAS reproduction.
//!
//! ```text
//! hwpr train   --samples 600 --dataset cifar10 --platform edge-gpu --out model.json
//! hwpr search  --model model.json --platform edge-gpu --pop 40 --gens 30
//! hwpr predict --model model.json --platform edge-gpu --arch "|nor_conv_3x3~0|+|...|"
//! hwpr bench   --space nb201 --samples 200 --out bench.json
//! ```

use hw_pr_nas::core::{HwPrNas, ModelConfig, SurrogateDataset, TrainConfig};
use hw_pr_nas::hwmodel::{Platform, SimBench, SimBenchConfig};
use hw_pr_nas::nasbench::{Architecture, Dataset, SearchSpaceId};
use hw_pr_nas::search::{HwPrNasEvaluator, Moea, MoeaConfig};
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "\
hwpr — Pareto Rank surrogate NAS (HW-PR-NAS reproduction)

USAGE:
  hwpr bench   --space <nb201|fbnet> --samples <N> [--seed <S>] --out <file.json>
  hwpr train   [--space <nb201|fbnet>] [--dataset <cifar10|cifar100|imagenet16>]
               [--platform <name>] [--samples <N>] [--seed <S>] [--paper] --out <file.json>
  hwpr search  --model <file.json> [--platform <name>] [--pop <N>] [--gens <N>] [--seed <S>]
  hwpr predict --model <file.json> [--platform <name>] --arch <arch-string>

PLATFORMS:
  edge-gpu edge-tpu raspberry-pi4 fpga-zc706 fpga-zcu102 pixel3 eyeriss
";

fn parse_platform(s: &str) -> Result<Platform, String> {
    match s {
        "edge-gpu" => Ok(Platform::EdgeGpu),
        "edge-tpu" => Ok(Platform::EdgeTpu),
        "raspberry-pi4" | "pi4" => Ok(Platform::RaspberryPi4),
        "fpga-zc706" | "zc706" => Ok(Platform::FpgaZc706),
        "fpga-zcu102" | "zcu102" => Ok(Platform::FpgaZcu102),
        "pixel3" => Ok(Platform::Pixel3),
        "eyeriss" => Ok(Platform::Eyeriss),
        other => Err(format!("unknown platform `{other}`")),
    }
}

fn parse_dataset(s: &str) -> Result<Dataset, String> {
    match s {
        "cifar10" => Ok(Dataset::Cifar10),
        "cifar100" => Ok(Dataset::Cifar100),
        "imagenet16" | "imagenet16-120" => Ok(Dataset::ImageNet16),
        other => Err(format!("unknown dataset `{other}`")),
    }
}

fn parse_space(s: &str) -> Result<SearchSpaceId, String> {
    match s {
        "nb201" | "nasbench201" => Ok(SearchSpaceId::NasBench201),
        "fbnet" => Ok(SearchSpaceId::FBNet),
        other => Err(format!("unknown space `{other}`")),
    }
}

/// Parses `--key value` pairs after the subcommand.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, found `{}`", args[i]))?;
        if key == "paper" {
            flags.insert(key.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn get_usize(flags: &HashMap<String, String>, key: &str, default: usize) -> Result<usize, String> {
    flags.get(key).map_or(Ok(default), |v| {
        v.parse().map_err(|e| format!("--{key}: {e}"))
    })
}

fn get_u64(flags: &HashMap<String, String>, key: &str, default: u64) -> Result<u64, String> {
    flags.get(key).map_or(Ok(default), |v| {
        v.parse().map_err(|e| format!("--{key}: {e}"))
    })
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return Err(USAGE.to_string());
    };
    let flags = parse_flags(&args[1..])?;
    match command.as_str() {
        "bench" => cmd_bench(&flags),
        "train" => cmd_train(&flags),
        "search" => cmd_search(&flags),
        "predict" => cmd_predict(&flags),
        "help" | "--help" | "-h" => Err(USAGE.to_string()),
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

fn cmd_bench(flags: &HashMap<String, String>) -> Result<(), String> {
    let space = parse_space(flags.get("space").map_or("nb201", String::as_str))?;
    let samples = get_usize(flags, "samples", 200)?;
    let seed = get_u64(flags, "seed", 0)?;
    let out = flags.get("out").ok_or("--out <file.json> is required")?;
    let bench = SimBench::generate(SimBenchConfig {
        space,
        sample_size: Some(samples),
        seed,
    });
    let json = serde_json_string(&bench)?;
    std::fs::write(out, json).map_err(|e| format!("write {out}: {e}"))?;
    eprintln!("wrote {} benchmark rows to {out}", bench.len());
    Ok(())
}

// the facade crate re-exports no serde_json; serialise via the bench's own
// serde support through a tiny helper
fn serde_json_string<T: serde::Serialize>(value: &T) -> Result<String, String> {
    serde_json::to_string(value).map_err(|e| format!("serialise: {e}"))
}

fn cmd_train(flags: &HashMap<String, String>) -> Result<(), String> {
    let space = parse_space(flags.get("space").map_or("nb201", String::as_str))?;
    let dataset = parse_dataset(flags.get("dataset").map_or("cifar10", String::as_str))?;
    let platform = parse_platform(flags.get("platform").map_or("edge-gpu", String::as_str))?;
    let samples = get_usize(flags, "samples", 600)?;
    let seed = get_u64(flags, "seed", 0)?;
    let out = flags.get("out").ok_or("--out <file.json> is required")?;
    let paper = flags.contains_key("paper");

    eprintln!("generating {samples} benchmark rows ({space}) ...");
    let bench = SimBench::generate(SimBenchConfig {
        space,
        sample_size: Some(samples),
        seed,
    });
    let data =
        SurrogateDataset::from_simbench(&bench, dataset, platform).map_err(|e| e.to_string())?;
    let (model_cfg, train_cfg) = if paper {
        (ModelConfig::paper(), TrainConfig::paper())
    } else {
        (ModelConfig::fast(), TrainConfig::fast())
    };
    eprintln!(
        "training HW-PR-NAS ({}) ...",
        if paper { "paper config" } else { "fast config" }
    );
    let (model, report) = HwPrNas::fit(
        &data,
        &model_cfg.with_seed(seed),
        &train_cfg.with_seed(seed),
    )
    .map_err(|e| e.to_string())?;
    eprintln!(
        "trained {} parameters in {} epochs; validation rank tau {:.3}",
        model.parameter_count(),
        report.epochs_run,
        report.val_rank_tau
    );
    model.save(out).map_err(|e| e.to_string())?;
    eprintln!("model saved to {out}");
    Ok(())
}

fn cmd_search(flags: &HashMap<String, String>) -> Result<(), String> {
    let path = flags
        .get("model")
        .ok_or("--model <file.json> is required")?;
    let model = HwPrNas::load(path).map_err(|e| e.to_string())?;
    let platform = match flags.get("platform") {
        Some(p) => parse_platform(p)?,
        None => *model
            .platforms()
            .first()
            .ok_or("model carries no platform heads")?,
    };
    let space = SearchSpaceId::NasBench201;
    let config = MoeaConfig {
        population: get_usize(flags, "pop", 40)?,
        generations: get_usize(flags, "gens", 30)?,
        seed: get_u64(flags, "seed", 0)?,
        ..MoeaConfig::small(space)
    };
    let moea = Moea::new(config).map_err(|e| e.to_string())?;
    let mut evaluator = HwPrNasEvaluator::new(model, platform);
    eprintln!("searching on {platform} ...");
    let result = moea.run(&mut evaluator).map_err(|e| e.to_string())?;
    eprintln!(
        "{} evaluations, {} surrogate calls, {:.1} ms",
        result.evaluations,
        result.surrogate_calls,
        result.wall_time.as_secs_f64() * 1e3
    );
    println!(
        "final population ({} architectures):",
        result.population.len()
    );
    for arch in &result.population {
        println!("{}", arch.to_arch_string());
    }
    Ok(())
}

fn cmd_predict(flags: &HashMap<String, String>) -> Result<(), String> {
    let path = flags
        .get("model")
        .ok_or("--model <file.json> is required")?;
    let arch_str = flags
        .get("arch")
        .ok_or("--arch <arch-string> is required")?;
    let model = HwPrNas::load(path).map_err(|e| e.to_string())?;
    let platform = match flags.get("platform") {
        Some(p) => parse_platform(p)?,
        None => *model
            .platforms()
            .first()
            .ok_or("model carries no platform heads")?,
    };
    let arch: Architecture = arch_str.parse().map_err(|e| format!("{e}"))?;
    let (scores, objectives) = model
        .predict_full(&[arch], platform)
        .map_err(|e| e.to_string())?;
    println!("score: {:.4}", scores[0]);
    println!(
        "predicted accuracy: {:.2} %, predicted latency: {:.3} ms",
        100.0 - objectives[0][0],
        objectives[0][1]
    );
    Ok(())
}

fn main() -> ExitCode {
    // HWPR_TELEMETRY=jsonl:PATH|stderr turns on the structured run record
    let telemetry = hw_pr_nas::obs::init_from_env();
    let outcome = run();
    if telemetry {
        // final metric totals (GEMM counters, cache hit/miss, ...) close
        // out the run record
        hw_pr_nas::obs::metrics::registry().emit();
        hw_pr_nas::obs::shutdown();
    }
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
