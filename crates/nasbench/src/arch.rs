//! The architecture type: codecs, enumeration and evolutionary operators.

use crate::op::{FbnetOp, Nb201Op};
use crate::SearchSpaceId;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// Number of searchable edges in a NAS-Bench-201 cell.
pub const NB201_EDGES: usize = 6;

/// Number of searchable layers in the FBNet macro-architecture.
pub const FBNET_LAYERS: usize = 22;

/// The `(source, target)` cell nodes of each NAS-Bench-201 edge, in the
/// canonical string order `|e(0,1)| + |e(0,2) e(1,2)| + |e(0,3) e(1,3) e(2,3)|`.
pub const NB201_EDGE_NODES: [(usize, usize); NB201_EDGES] =
    [(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3)];

/// A sampled neural architecture from either benchmark.
///
/// # Examples
///
/// ```
/// use hwpr_nasbench::{Architecture, Nb201Op};
///
/// let arch = Architecture::nb201([Nb201Op::NorConv3x3; 6]);
/// assert_eq!(
///     arch.to_arch_string(),
///     "|nor_conv_3x3~0|+|nor_conv_3x3~0|nor_conv_3x3~1|+|nor_conv_3x3~0|nor_conv_3x3~1|nor_conv_3x3~2|"
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Architecture {
    /// A NAS-Bench-201 cell: one op per edge in canonical order.
    Nb201([Nb201Op; NB201_EDGES]),
    /// An FBNet macro-architecture: one block per searchable layer.
    Fbnet([FbnetOp; FBNET_LAYERS]),
}

/// Error returned when parsing an architecture string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchParseError {
    message: String,
}

impl ArchParseError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ArchParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid architecture string: {}", self.message)
    }
}

impl Error for ArchParseError {}

impl Architecture {
    /// Creates a NAS-Bench-201 architecture from its edge ops.
    pub fn nb201(ops: [Nb201Op; NB201_EDGES]) -> Self {
        Architecture::Nb201(ops)
    }

    /// Creates an FBNet architecture from its layer blocks.
    pub fn fbnet(ops: [FbnetOp; FBNET_LAYERS]) -> Self {
        Architecture::Fbnet(ops)
    }

    /// The NAS-Bench-201 architecture with enumeration index `index`
    /// (base-5 digits, most significant digit = first edge).
    ///
    /// Returns `None` when `index >= 15 625`.
    pub fn nb201_from_index(index: u64) -> Option<Self> {
        if index >= SearchSpaceId::NasBench201.size() {
            return None;
        }
        let mut ops = [Nb201Op::None; NB201_EDGES];
        let mut rest = index;
        for slot in ops.iter_mut().rev() {
            *slot = Nb201Op::from_index((rest % 5) as usize).expect("digit < 5");
            rest /= 5;
        }
        Some(Architecture::Nb201(ops))
    }

    /// The FBNet architecture with enumeration index `index` (base-9
    /// digits). The space has 9²² members, so indices are `u128`.
    ///
    /// Returns `None` when `index >= 9^22`.
    pub fn fbnet_from_index(index: u128) -> Option<Self> {
        let total = 9u128.pow(FBNET_LAYERS as u32);
        if index >= total {
            return None;
        }
        let mut ops = [FbnetOp::Skip; FBNET_LAYERS];
        let mut rest = index;
        for slot in ops.iter_mut().rev() {
            *slot = FbnetOp::from_index((rest % 9) as usize).expect("digit < 9");
            rest /= 9;
        }
        Some(Architecture::Fbnet(ops))
    }

    /// The enumeration index of this architecture within its space.
    pub fn index(&self) -> u128 {
        match self {
            Architecture::Nb201(ops) => ops
                .iter()
                .fold(0u128, |acc, op| acc * 5 + op.index() as u128),
            Architecture::Fbnet(ops) => ops
                .iter()
                .fold(0u128, |acc, op| acc * 9 + op.index() as u128),
        }
    }

    /// Which benchmark this architecture belongs to.
    pub fn space(&self) -> SearchSpaceId {
        match self {
            Architecture::Nb201(_) => SearchSpaceId::NasBench201,
            Architecture::Fbnet(_) => SearchSpaceId::FBNet,
        }
    }

    /// Op index at each searchable position.
    pub fn op_indices(&self) -> Vec<usize> {
        match self {
            Architecture::Nb201(ops) => ops.iter().map(|o| o.index()).collect(),
            Architecture::Fbnet(ops) => ops.iter().map(|o| o.index()).collect(),
        }
    }

    /// Samples a uniformly random architecture from `space`.
    pub fn random<R: Rng>(space: SearchSpaceId, rng: &mut R) -> Self {
        match space {
            SearchSpaceId::NasBench201 => {
                let mut ops = [Nb201Op::None; NB201_EDGES];
                for slot in &mut ops {
                    *slot = Nb201Op::from_index(rng.gen_range(0..5)).expect("range");
                }
                Architecture::Nb201(ops)
            }
            SearchSpaceId::FBNet => {
                let mut ops = [FbnetOp::Skip; FBNET_LAYERS];
                for slot in &mut ops {
                    *slot = FbnetOp::from_index(rng.gen_range(0..9)).expect("range");
                }
                Architecture::Fbnet(ops)
            }
        }
    }

    /// Returns a mutated copy: one random position is changed to a
    /// different random operation.
    pub fn mutate<R: Rng>(&self, rng: &mut R) -> Self {
        let mut out = self.clone();
        match &mut out {
            Architecture::Nb201(ops) => {
                let pos = rng.gen_range(0..ops.len());
                let current = ops[pos].index();
                let mut pick = rng.gen_range(0..4);
                if pick >= current {
                    pick += 1;
                }
                ops[pos] = Nb201Op::from_index(pick).expect("range");
            }
            Architecture::Fbnet(ops) => {
                let pos = rng.gen_range(0..ops.len());
                let current = ops[pos].index();
                let mut pick = rng.gen_range(0..8);
                if pick >= current {
                    pick += 1;
                }
                ops[pos] = FbnetOp::from_index(pick).expect("range");
            }
        }
        out
    }

    /// Uniform crossover between two parents *of the same space*: each
    /// position is inherited from a random parent.
    ///
    /// Returns `None` if the parents come from different spaces.
    pub fn crossover<R: Rng>(&self, other: &Self, rng: &mut R) -> Option<Self> {
        match (self, other) {
            (Architecture::Nb201(a), Architecture::Nb201(b)) => {
                let mut ops = *a;
                for (slot, &bv) in ops.iter_mut().zip(b.iter()) {
                    if rng.gen_bool(0.5) {
                        *slot = bv;
                    }
                }
                Some(Architecture::Nb201(ops))
            }
            (Architecture::Fbnet(a), Architecture::Fbnet(b)) => {
                let mut ops = *a;
                for (slot, &bv) in ops.iter_mut().zip(b.iter()) {
                    if rng.gen_bool(0.5) {
                        *slot = bv;
                    }
                }
                Some(Architecture::Fbnet(ops))
            }
            _ => None,
        }
    }

    /// The canonical string encoding.
    ///
    /// NAS-Bench-201 uses the benchmark's own format
    /// (`|op~0|+|op~0|op~1|+|op~0|op~1|op~2|`); FBNet architectures are
    /// encoded in the same pipe-delimited style (`fbnet:|k3_e1|skip|...|`),
    /// as the paper does when feeding FBNet to the LSTM encoder.
    pub fn to_arch_string(&self) -> String {
        match self {
            Architecture::Nb201(ops) => {
                let op = |i: usize| format!("{}~{}", ops[i].name(), NB201_EDGE_NODES[i].0);
                format!(
                    "|{}|+|{}|{}|+|{}|{}|{}|",
                    op(0),
                    op(1),
                    op(2),
                    op(3),
                    op(4),
                    op(5)
                )
            }
            Architecture::Fbnet(ops) => {
                let mut s = String::from("fbnet:|");
                for op in ops {
                    s.push_str(op.name());
                    s.push('|');
                }
                s
            }
        }
    }
}

impl FromStr for Architecture {
    type Err = ArchParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(body) = s.strip_prefix("fbnet:") {
            let parts: Vec<&str> = body.split('|').filter(|p| !p.is_empty()).collect();
            if parts.len() != FBNET_LAYERS {
                return Err(ArchParseError::new(format!(
                    "expected {FBNET_LAYERS} FBNet blocks, found {}",
                    parts.len()
                )));
            }
            let mut ops = [FbnetOp::Skip; FBNET_LAYERS];
            for (slot, part) in ops.iter_mut().zip(&parts) {
                *slot = FbnetOp::from_name(part)
                    .ok_or_else(|| ArchParseError::new(format!("unknown FBNet block `{part}`")))?;
            }
            return Ok(Architecture::Fbnet(ops));
        }
        // NAS-Bench-201 format
        let tokens: Vec<&str> = s.split(['|', '+']).filter(|p| !p.is_empty()).collect();
        if tokens.len() != NB201_EDGES {
            return Err(ArchParseError::new(format!(
                "expected {NB201_EDGES} edge tokens, found {}",
                tokens.len()
            )));
        }
        let mut ops = [Nb201Op::None; NB201_EDGES];
        for (i, (slot, token)) in ops.iter_mut().zip(&tokens).enumerate() {
            let (name, src) = token.rsplit_once('~').ok_or_else(|| {
                ArchParseError::new(format!("edge token `{token}` lacks `~source`"))
            })?;
            let expected = NB201_EDGE_NODES[i].0.to_string();
            if src != expected {
                return Err(ArchParseError::new(format!(
                    "edge {i} source `{src}`, expected `{expected}`"
                )));
            }
            *slot = Nb201Op::from_name(name)
                .ok_or_else(|| ArchParseError::new(format!("unknown op `{name}`")))?;
        }
        Ok(Architecture::Nb201(ops))
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_arch_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn nb201_index_round_trip() {
        for idx in [0u64, 1, 4, 5, 624, 15_624, 8_888] {
            let a = Architecture::nb201_from_index(idx).unwrap();
            assert_eq!(a.index(), idx as u128);
        }
        assert!(Architecture::nb201_from_index(15_625).is_none());
    }

    #[test]
    fn fbnet_index_round_trip() {
        for idx in [0u128, 1, 8, 9, 9u128.pow(22) - 1, 123_456_789_012_345] {
            let a = Architecture::fbnet_from_index(idx).unwrap();
            assert_eq!(a.index(), idx);
        }
        assert!(Architecture::fbnet_from_index(9u128.pow(22)).is_none());
    }

    #[test]
    fn string_round_trip_nb201() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..50 {
            let a = Architecture::random(SearchSpaceId::NasBench201, &mut rng);
            let s = a.to_arch_string();
            let back: Architecture = s.parse().unwrap();
            assert_eq!(a, back);
        }
    }

    #[test]
    fn string_round_trip_fbnet() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..50 {
            let a = Architecture::random(SearchSpaceId::FBNet, &mut rng);
            let back: Architecture = a.to_arch_string().parse().unwrap();
            assert_eq!(a, back);
        }
    }

    #[test]
    fn canonical_nb201_string_format() {
        let a = Architecture::nb201_from_index(0).unwrap();
        assert_eq!(
            a.to_arch_string(),
            "|none~0|+|none~0|none~1|+|none~0|none~1|none~2|"
        );
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("".parse::<Architecture>().is_err());
        assert!("|bogus~0|+|none~0|none~1|+|none~0|none~1|none~2|"
            .parse::<Architecture>()
            .is_err());
        assert!("|none~1|+|none~0|none~1|+|none~0|none~1|none~2|"
            .parse::<Architecture>()
            .is_err()); // wrong source node
        assert!("fbnet:|k3_e1|".parse::<Architecture>().is_err());
        assert!("fbnet:|bogus|k3_e1|k3_e1|k3_e1|k3_e1|k3_e1|k3_e1|k3_e1|k3_e1|k3_e1|k3_e1|k3_e1|k3_e1|k3_e1|k3_e1|k3_e1|k3_e1|k3_e1|k3_e1|k3_e1|k3_e1|k3_e1|"
            .parse::<Architecture>()
            .is_err());
    }

    #[test]
    fn mutate_changes_exactly_one_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for space in [SearchSpaceId::NasBench201, SearchSpaceId::FBNet] {
            let a = Architecture::random(space, &mut rng);
            let b = a.mutate(&mut rng);
            let diff: usize = a
                .op_indices()
                .iter()
                .zip(b.op_indices())
                .filter(|(x, y)| **x != *y)
                .count();
            assert_eq!(diff, 1);
        }
    }

    #[test]
    fn crossover_same_space_mixes_parents() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let a = Architecture::random(SearchSpaceId::NasBench201, &mut rng);
        let b = Architecture::random(SearchSpaceId::NasBench201, &mut rng);
        let child = a.crossover(&b, &mut rng).unwrap();
        for ((&c, &x), &y) in child
            .op_indices()
            .iter()
            .zip(a.op_indices().iter())
            .zip(b.op_indices().iter())
        {
            assert!(c == x || c == y);
        }
    }

    #[test]
    fn crossover_across_spaces_is_none() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let a = Architecture::random(SearchSpaceId::NasBench201, &mut rng);
        let b = Architecture::random(SearchSpaceId::FBNet, &mut rng);
        assert!(a.crossover(&b, &mut rng).is_none());
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut r1 = ChaCha8Rng::seed_from_u64(7);
        let mut r2 = ChaCha8Rng::seed_from_u64(7);
        assert_eq!(
            Architecture::random(SearchSpaceId::FBNet, &mut r1),
            Architecture::random(SearchSpaceId::FBNet, &mut r2)
        );
    }

    #[test]
    fn serde_round_trip() {
        let a = Architecture::nb201_from_index(31).unwrap();
        let json = serde_json::to_string(&a).unwrap();
        let back: Architecture = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
