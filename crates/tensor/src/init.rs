//! Seeded random initialisation schemes for parameters.

use crate::matrix::Matrix;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Weight-initialisation scheme.
///
/// # Examples
///
/// ```
/// use hwpr_tensor::{Init, Matrix};
///
/// let w = Init::Xavier.matrix(4, 8, 42);
/// assert_eq!(w.shape(), (4, 8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Init {
    /// All zeros (used for biases).
    Zeros,
    /// Uniform in `[-limit, limit]`.
    Uniform(f32),
    /// Gaussian with the given standard deviation.
    Normal(f32),
    /// Xavier/Glorot normal: `std = sqrt(2 / (fan_in + fan_out))`.
    #[default]
    Xavier,
    /// He/Kaiming normal: `std = sqrt(2 / fan_in)`; suited to ReLU layers.
    He,
}

impl Init {
    /// Materialises a `rows x cols` matrix using this scheme and a seed.
    ///
    /// The generator is a counter-based ChaCha8 stream, so results are
    /// reproducible across platforms and `rand` versions.
    pub fn matrix(self, rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let gen: Box<dyn FnMut(&mut ChaCha8Rng) -> f32> = match self {
            Init::Zeros => Box::new(|_| 0.0),
            Init::Uniform(limit) => Box::new(move |r| r.gen_range(-limit..=limit)),
            Init::Normal(std) => Box::new(move |r| gaussian(r) * std),
            Init::Xavier => {
                let std = xavier_std(rows, cols);
                Box::new(move |r| gaussian(r) * std)
            }
            Init::He => {
                let std = he_std(rows);
                Box::new(move |r| gaussian(r) * std)
            }
        };
        let mut g = gen;
        let data = (0..rows * cols).map(|_| g(&mut rng)).collect();
        Matrix::from_vec(rows, cols, data).expect("init preserves shape")
    }
}

/// Xavier/Glorot standard deviation for a `fan_in x fan_out` weight.
pub fn xavier_std(fan_in: usize, fan_out: usize) -> f32 {
    (2.0 / (fan_in + fan_out).max(1) as f32).sqrt()
}

/// He/Kaiming standard deviation for a layer with `fan_in` inputs.
pub fn he_std(fan_in: usize) -> f32 {
    (2.0 / fan_in.max(1) as f32).sqrt()
}

/// Standard normal sample via Box-Muller.
fn gaussian<R: Rng>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = Init::Xavier.matrix(3, 3, 7);
        let b = Init::Xavier.matrix(3, 3, 7);
        assert_eq!(a, b);
        let c = Init::Xavier.matrix(3, 3, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn zeros_is_zero() {
        assert_eq!(Init::Zeros.matrix(2, 2, 0), Matrix::zeros(2, 2));
    }

    #[test]
    fn uniform_respects_limit() {
        let m = Init::Uniform(0.1).matrix(10, 10, 1);
        assert!(m.as_slice().iter().all(|x| x.abs() <= 0.1));
    }

    #[test]
    fn normal_std_plausible() {
        let m = Init::Normal(1.0).matrix(50, 50, 3);
        let mean = m.mean();
        let var = m.map(|x| (x - mean) * (x - mean)).mean();
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 1.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn he_and_xavier_scale_with_fans() {
        assert!(he_std(100) < he_std(10));
        assert!(xavier_std(100, 100) < xavier_std(10, 10));
        // degenerate fans do not divide by zero
        assert!(he_std(0).is_finite());
        assert!(xavier_std(0, 0).is_finite());
    }
}
