//! Exact hypervolume computation (minimization convention).

use crate::dominance::weakly_dominates;
use crate::sort::pareto_front;
use crate::{validate_points, MooError, Result};

/// The hypervolume dominated by `points` with respect to `reference`
/// (every objective minimised; the reference must be weakly worse than
/// every point in every objective).
///
/// Uses an exact sweep for 1-D/2-D and the WFG exclusive-hypervolume
/// recursion for three or more objectives — the same quantity pymoo
/// computes for the paper's Table III.
///
/// # Errors
///
/// Returns [`MooError`] for empty/inconsistent input, a reference point of
/// the wrong dimension, or a reference that does not bound the points.
///
/// # Examples
///
/// ```
/// // a single point at (1, 1) with reference (3, 3) dominates a 2x2 box
/// let hv = hwpr_moo::hypervolume(&[vec![1.0, 1.0]], &[3.0, 3.0]).unwrap();
/// assert_eq!(hv, 4.0);
/// ```
pub fn hypervolume(points: &[Vec<f64>], reference: &[f64]) -> Result<f64> {
    let dim = validate_points(points)?;
    if reference.len() != dim {
        return Err(MooError::DimensionMismatch {
            expected: dim,
            found: reference.len(),
        });
    }
    if reference.iter().any(|v| !v.is_finite()) {
        return Err(MooError::NonFinite);
    }
    if points
        .iter()
        .any(|p| p.iter().zip(reference).any(|(x, r)| x > r))
    {
        return Err(MooError::ReferenceNotDominating);
    }
    // only the non-dominated points contribute
    let front_idx = pareto_front(points)?;
    let front: Vec<Vec<f64>> = front_idx.iter().map(|&i| points[i].clone()).collect();
    Ok(match dim {
        1 => reference[0] - front.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min),
        2 => hv2(&front, reference),
        _ => wfg(&front, reference),
    })
}

/// 2-D hypervolume by sweeping points sorted on the first objective.
fn hv2(front: &[Vec<f64>], reference: &[f64]) -> f64 {
    let mut pts = front.to_vec();
    pts.sort_by(|a, b| a[0].total_cmp(&b[0]));
    let mut hv = 0.0;
    let mut prev_y = reference[1];
    for p in pts {
        // front is non-dominated, so y strictly decreases along increasing x
        let width = reference[0] - p[0];
        let height = prev_y - p[1];
        if height > 0.0 {
            hv += width * height;
            prev_y = p[1];
        }
    }
    hv
}

/// WFG exclusive-hypervolume recursion for `d >= 3`.
fn wfg(front: &[Vec<f64>], reference: &[f64]) -> f64 {
    let mut pts = front.to_vec();
    // processing points sorted worst-first on the last objective improves
    // limit-set pruning
    pts.sort_by(|a, b| b[a.len() - 1].total_cmp(&a[a.len() - 1]));
    let mut total = 0.0;
    for i in 0..pts.len() {
        total += exclusive_hv(&pts[i], &pts[i + 1..], reference);
    }
    total
}

/// Volume dominated by `p` alone, minus the part also dominated by `rest`.
fn exclusive_hv(p: &[f64], rest: &[Vec<f64>], reference: &[f64]) -> f64 {
    let box_vol: f64 = p.iter().zip(reference).map(|(x, r)| r - x).product();
    if rest.is_empty() {
        return box_vol;
    }
    // limit set: clip every other point into p's dominated box
    let limited: Vec<Vec<f64>> = rest
        .iter()
        .map(|q| q.iter().zip(p).map(|(&qv, &pv)| qv.max(pv)).collect())
        .collect();
    // non-dominated subset of the limit set
    let nd = non_dominated(&limited);
    box_vol - hv_dispatch(&nd, reference)
}

fn hv_dispatch(front: &[Vec<f64>], reference: &[f64]) -> f64 {
    if front.is_empty() {
        return 0.0;
    }
    match front[0].len() {
        1 => reference[0] - front.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min),
        2 => hv2(front, reference),
        _ => wfg(front, reference),
    }
}

fn non_dominated(points: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let mut keep: Vec<Vec<f64>> = Vec::new();
    for p in points {
        if keep.iter().any(|q| weakly_dominates(q, p)) {
            continue;
        }
        keep.retain(|q| !weakly_dominates(p, q));
        keep.push(p.clone());
    }
    keep
}

/// Hypervolume of `approximation` normalised by the hypervolume of
/// `true_front` under the same reference point — the paper's quality
/// metric for Pareto front approximations (0 ≤ value ≤ 1 when the true
/// front is optimal).
///
/// # Errors
///
/// Propagates [`MooError`] from either hypervolume computation, and
/// returns [`MooError::EmptySet`] if the true front has zero hypervolume.
pub fn normalized_hypervolume(
    approximation: &[Vec<f64>],
    true_front: &[Vec<f64>],
    reference: &[f64],
) -> Result<f64> {
    let denom = hypervolume(true_front, reference)?;
    if denom <= 0.0 {
        return Err(MooError::EmptySet);
    }
    Ok(hypervolume(approximation, reference)? / denom)
}

/// The reference point the paper uses: the coordinate-wise worst value
/// over `points` ("the furthest point from the Pareto front"), pushed out
/// by `margin` in every objective.
///
/// # Errors
///
/// Returns [`MooError`] for empty or inconsistent point sets.
pub fn nadir_reference_point(points: &[Vec<f64>], margin: f64) -> Result<Vec<f64>> {
    let dim = validate_points(points)?;
    let mut reference = vec![f64::NEG_INFINITY; dim];
    for p in points {
        for (r, &v) in reference.iter_mut().zip(p) {
            *r = r.max(v);
        }
    }
    for r in &mut reference {
        *r += margin;
    }
    Ok(reference)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_d_staircase() {
        let front = vec![vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0]];
        let hv = hypervolume(&front, &[4.0, 4.0]).unwrap();
        // boxes: (4-1)(4-3)=3 + (4-2)(3-2)=2 + (4-3)(2-1)=1
        assert!((hv - 6.0).abs() < 1e-12);
    }

    #[test]
    fn dominated_points_do_not_change_hv() {
        let front = vec![vec![1.0, 3.0], vec![2.0, 2.0]];
        let with_dominated = vec![vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 3.5]];
        let r = [5.0, 5.0];
        assert_eq!(
            hypervolume(&front, &r).unwrap(),
            hypervolume(&with_dominated, &r).unwrap()
        );
    }

    #[test]
    fn duplicate_points_do_not_double_count() {
        let front = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        assert_eq!(hypervolume(&front, &[2.0, 2.0]).unwrap(), 1.0);
    }

    #[test]
    fn one_dimensional() {
        let hv = hypervolume(&[vec![2.0], vec![5.0]], &[10.0]).unwrap();
        assert_eq!(hv, 8.0);
    }

    #[test]
    fn three_d_single_point() {
        let hv = hypervolume(&[vec![1.0, 1.0, 1.0]], &[2.0, 3.0, 4.0]).unwrap();
        assert_eq!(hv, 1.0 * 2.0 * 3.0);
    }

    #[test]
    fn three_d_union_of_two_boxes() {
        // boxes [0,2]^3 and [1,3]x[1,3]x[0,3]... compute via inclusion-exclusion
        let a = vec![1.0, 1.0, 1.0]; // box to (4,4,4): 27
        let b = vec![2.0, 2.0, 0.0]; // box: 2*2*4 = 16, overlap with a: 2*2*3 = 12
        let hv = hypervolume(&[a, b], &[4.0, 4.0, 4.0]).unwrap();
        assert!((hv - (27.0 + 16.0 - 12.0)).abs() < 1e-9, "hv = {hv}");
    }

    #[test]
    fn three_d_matches_monte_carlo() {
        let front = vec![
            vec![0.2, 0.7, 0.5],
            vec![0.5, 0.2, 0.8],
            vec![0.8, 0.5, 0.1],
            vec![0.4, 0.4, 0.4],
        ];
        let reference = [1.0, 1.0, 1.0];
        let exact = hypervolume(&front, &reference).unwrap();
        // deterministic grid estimate
        let n = 64;
        let mut hits = 0usize;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let q = [
                        (i as f64 + 0.5) / n as f64,
                        (j as f64 + 0.5) / n as f64,
                        (k as f64 + 0.5) / n as f64,
                    ];
                    if front.iter().any(|p| weakly_dominates(p, &q)) {
                        hits += 1;
                    }
                }
            }
        }
        let estimate = hits as f64 / (n * n * n) as f64;
        assert!(
            (exact - estimate).abs() < 0.02,
            "exact {exact} vs grid {estimate}"
        );
    }

    #[test]
    fn rejects_bad_reference() {
        let front = vec![vec![1.0, 1.0]];
        assert!(matches!(
            hypervolume(&front, &[0.5, 2.0]).unwrap_err(),
            MooError::ReferenceNotDominating
        ));
        assert!(matches!(
            hypervolume(&front, &[1.0]).unwrap_err(),
            MooError::DimensionMismatch { .. }
        ));
        assert!(hypervolume(&front, &[f64::INFINITY, 2.0]).is_err());
    }

    #[test]
    fn normalized_hv_of_true_front_is_one() {
        let truth = vec![vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0]];
        let reference = nadir_reference_point(&truth, 1.0).unwrap();
        let nhv = normalized_hypervolume(&truth, &truth, &reference).unwrap();
        assert!((nhv - 1.0).abs() < 1e-12);
        // a worse approximation scores below one
        let approx = vec![vec![2.0, 3.0], vec![3.0, 2.0]];
        let nhv = normalized_hypervolume(&approx, &truth, &reference).unwrap();
        assert!(nhv < 1.0);
    }

    #[test]
    fn nadir_reference_is_worst_plus_margin() {
        let pts = vec![vec![1.0, 9.0], vec![5.0, 2.0]];
        assert_eq!(nadir_reference_point(&pts, 1.0).unwrap(), vec![6.0, 10.0]);
        assert!(nadir_reference_point(&[], 1.0).is_err());
    }
}
