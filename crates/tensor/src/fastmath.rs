//! Branch-free `tanh`/`sigmoid` approximations for fused kernels.
//!
//! `f32::tanh` and `f32::exp` lower to scalar libm calls, which the
//! auto-vectoriser cannot touch; in the fused LSTM gate pass they cost
//! more than the gate GEMM itself. These replacements are clamped
//! rational approximations built from plain multiply/add/divide, so a
//! whole gate row vectorises. Maximum absolute error is below `1e-6`
//! over the full range (the unit tests sweep it), which is far inside
//! the tolerance of the gradchecks and the fused-vs-reference
//! differential tests.
//!
//! The reference ops (`Tape::tanh`, `Tape::sigmoid`,
//! [`crate::reference`]) keep libm on purpose: they are the ground truth
//! the fused kernels are pinned against.

/// `tanh(x)` as a degree-13/6 rational approximation on the clamped
/// range `|x| <= 7.90531` (beyond which `tanh` saturates to `±1` in
/// f32). Coefficients are the widely used minimax set (Eigen/XNNPACK
/// lineage).
#[inline(always)]
pub fn fast_tanh(x: f32) -> f32 {
    const CLAMP: f32 = 7.905_31;
    let x = x.clamp(-CLAMP, CLAMP);
    let x2 = x * x;
    let mut p = -2.760_768_4e-16;
    p = p * x2 + 2.000_188e-13;
    p = p * x2 + -8.604_672e-11;
    p = p * x2 + 5.122_297e-8;
    p = p * x2 + 1.485_722_4e-5;
    p = p * x2 + 6.372_619e-4;
    p = p * x2 + 4.893_524_6e-3;
    p *= x;
    let mut q = 1.198_258_4e-6;
    q = q * x2 + 1.185_347_1e-4;
    q = q * x2 + 2.268_434_6e-3;
    q = q * x2 + 4.893_525e-3;
    p / q
}

/// `1 / (1 + exp(-x))` via the tanh identity
/// `sigmoid(x) = (1 + tanh(x / 2)) / 2` — same vectorisable arithmetic,
/// same sub-`1e-6` absolute error.
#[inline(always)]
pub fn fast_sigmoid(x: f32) -> f32 {
    0.5 + 0.5 * fast_tanh(0.5 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tanh_matches_libm_within_1e6() {
        let mut worst = 0.0f32;
        let mut x = -12.0f32;
        while x <= 12.0 {
            worst = worst.max((fast_tanh(x) - x.tanh()).abs());
            x += 1e-3;
        }
        assert!(worst < 1e-6, "max |fast_tanh - tanh| = {worst}");
    }

    #[test]
    fn sigmoid_matches_libm_within_1e6() {
        let mut worst = 0.0f32;
        let mut x = -12.0f32;
        while x <= 12.0 {
            let exact = 1.0 / (1.0 + (-x).exp());
            worst = worst.max((fast_sigmoid(x) - exact).abs());
            x += 1e-3;
        }
        assert!(worst < 1e-6, "max |fast_sigmoid - sigmoid| = {worst}");
    }

    #[test]
    fn saturates_cleanly() {
        // the clamped rational lands within an ULP of the saturation
        // values rather than exactly on them
        assert!((fast_tanh(40.0) - 1.0).abs() < 1e-6);
        assert!((fast_tanh(-40.0) + 1.0).abs() < 1e-6);
        assert!((fast_sigmoid(40.0) - 1.0).abs() < 1e-6);
        assert!(fast_sigmoid(-40.0).abs() < 1e-6);
        assert_eq!(fast_tanh(0.0), 0.0);
        assert_eq!(fast_sigmoid(0.0), 0.5);
    }

    #[test]
    fn propagates_nan() {
        assert!(fast_tanh(f32::NAN).is_nan());
        assert!(fast_sigmoid(f32::NAN).is_nan());
    }
}
