//! Ablation of the training objective (the paper's footnote 2: "we
//! completed a series of tests with the RMSE only, but our new
//! multi-objective loss performs better with the ranking scores").
//!
//! Trains HW-PR-NAS with (a) RMSE only, (b) ranking loss only, (c) the
//! paper's combined loss, and compares validation rank τ and the final
//! search hypervolume.

use crate::{shared_reference, true_objectives, Harness, MarkdownTable};
use hwpr_core::HwPrNas;
use hwpr_hwmodel::Platform;
use hwpr_moo::MooWorkspace;
use hwpr_nasbench::{Dataset, SearchSpaceId};
use std::fmt::Write as _;

/// Runs the ablation and returns the markdown report.
pub fn run(h: &Harness) -> String {
    let dataset = Dataset::Cifar10;
    let platform = Platform::EdgeGpu;
    let space = SearchSpaceId::NasBench201;
    let data = h.dataset(space, dataset, platform);
    let oracle = h.measured(dataset, platform);

    let variants: [(&str, f32, f32); 3] = [
        ("RMSE only (no ranking loss)", 0.0, 1.0),
        ("Pareto ranking loss only", 1.0, 0.0),
        ("Combined (paper)", 1.0, 1.0),
    ];
    let mut rows = Vec::new();
    let mut populations = Vec::new();
    for &(name, rank_w, rmse_w) in &variants {
        let mut train = h.scale.train_config().with_seed(3);
        train.rank_loss_weight = rank_w;
        train.rmse_loss_weight = rmse_w;
        let (model, report) = HwPrNas::fit(&data, &h.scale.model_config().with_seed(3), &train)
            .expect("training failed");
        let result = h.run_moea_hwpr(model, platform, vec![space], 3);
        rows.push((name, report.val_rank_tau, result.population.clone()));
        populations.push(true_objectives(&result.population, &oracle));
    }
    let reference = shared_reference(&populations);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Ablation — training-loss composition (§III-A, footnote 2)\n"
    );
    let mut t = MarkdownTable::new(vec!["Loss", "Validation rank τ ↑", "Search hypervolume ↑"]);
    let mut moo = MooWorkspace::new();
    for ((name, tau, pop), objs) in rows.iter().zip(&populations) {
        let hv = moo.hypervolume(objs, &reference).expect("bounded");
        let _ = pop;
        t.row(vec![
            name.to_string(),
            format!("{tau:.3}"),
            format!("{hv:.1}"),
        ]);
    }
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\nExpected shape: the combined loss matches or beats both single \
         terms — RMSE alone optimises objective values but not dominance \
         ordering, the ranking loss alone lacks the per-branch anchoring \
         that speeds up training (§III-B)."
    );
    out
}
