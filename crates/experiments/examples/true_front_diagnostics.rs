//! Dev diagnostic: ground-truth mixed-space front proportions per platform
//! (what a perfect search would produce in Table IV).
use hwpr_core::nb201_fraction;
use hwpr_experiments::{Harness, Scale};
use hwpr_hwmodel::Platform;
use hwpr_moo::pareto_front;
use hwpr_nasbench::Dataset;

fn main() {
    let h = Harness::with_scale(Scale::Fast);
    for platform in [
        Platform::EdgeGpu,
        Platform::EdgeTpu,
        Platform::FpgaZc706,
        Platform::Pixel3,
    ] {
        let mut entries = h.nb201().entries().to_vec();
        entries.extend_from_slice(h.fbnet().entries());
        let objs: Vec<Vec<f64>> = entries
            .iter()
            .map(|e| e.objectives(Dataset::Cifar10, platform))
            .collect();
        let front = pareto_front(&objs).unwrap();
        let archs: Vec<_> = front.iter().map(|&i| entries[i].arch().clone()).collect();
        println!(
            "{platform:>14}: front {} archs, NB201 {:.1}%",
            front.len(),
            nb201_fraction(&archs) * 100.0
        );
        // print the front to inspect the accuracy/latency ranges per space
        let mut pts: Vec<(f64, f64, bool)> = front
            .iter()
            .map(|&i| {
                (
                    objs[i][0],
                    objs[i][1],
                    entries[i].arch().space() == hwpr_nasbench::SearchSpaceId::NasBench201,
                )
            })
            .collect();
        pts.sort_by(|a, b| a.1.total_cmp(&b.1));
        for (err, lat, nb) in pts.iter().take(12) {
            println!(
                "    err {err:6.2}%  lat {lat:8.3}ms  {}",
                if *nb { "NB201" } else { "FBNet" }
            );
        }
    }
}
