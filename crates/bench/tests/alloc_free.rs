//! Proves the zero-allocation properties of the hot paths: once its
//! arenas, buffer pools and caches are warm, (a) a training step,
//! (b) a frozen-engine inference pass and (c) the workspace-backed MOO
//! kernels each perform zero heap allocations.
//!
//! Gated behind the `alloc-count` feature because it installs a global
//! allocator; run with `cargo test -p hwpr-bench --features alloc-count`.

#![cfg(feature = "alloc-count")]

use hwpr_bench::alloc_count::{allocations, CountingAllocator};
use hwpr_bench::train_step::{step_data, FusedTrainer, StepConfig};
use hwpr_bench::{fixture_archs, fixture_model, fixture_objectives};
use hwpr_core::Precision;
use hwpr_hwmodel::Platform;
use hwpr_moo::{Fronts, IncrementalHv2, MooWorkspace};
use hwpr_nasbench::SearchSpaceId;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_train_step_is_allocation_free() {
    let config = StepConfig::tiny();
    let data = step_data(&config);
    let mut trainer = FusedTrainer::new(&config);
    // warm-up: grows the node arena, buffer pools, gradient buffers and
    // AdamW moments to their steady-state footprint
    for _ in 0..5 {
        trainer.step(&data);
    }
    let before = allocations();
    let mut loss = 0.0;
    for _ in 0..3 {
        loss += trainer.step(&data);
    }
    let after = allocations();
    assert!(loss.is_finite());
    assert_eq!(
        after - before,
        0,
        "steady-state training steps performed {} heap allocations",
        after - before
    );
}

#[test]
fn warm_moo_workspace_calls_are_allocation_free() {
    // both dispatch paths: the 2-D sweep and the M >= 3 CSR + WFG route
    let points2 = fixture_objectives(256, 2);
    let points3 = fixture_objectives(128, 3);
    let reference2 = vec![101.0, 101.0];
    let reference3 = vec![101.0, 101.0, 101.0];
    let mut ws = MooWorkspace::new();
    let mut fronts = Fronts::new();
    let mut checksum = 0.0f64;
    // warm-up: grows every scratch buffer (objective arena, CSR edges,
    // sort orders, WFG level pool) to its steady-state footprint
    for _ in 0..3 {
        ws.fast_non_dominated_sort_into(&points2, &mut fronts)
            .unwrap();
        ws.fast_non_dominated_sort_into(&points3, &mut fronts)
            .unwrap();
        ws.pareto_ranks(&points2).unwrap();
        ws.pareto_front(&points3).unwrap();
        ws.crowding_distance(&points2).unwrap();
        checksum += ws.hypervolume(&points2, &reference2).unwrap();
        checksum += ws.hypervolume(&points3, &reference3).unwrap();
    }
    let before = allocations();
    for _ in 0..3 {
        ws.fast_non_dominated_sort_into(&points2, &mut fronts)
            .unwrap();
        checksum += fronts.front(0).len() as f64;
        ws.fast_non_dominated_sort_into(&points3, &mut fronts)
            .unwrap();
        checksum += ws.pareto_ranks(&points2).unwrap().len() as f64;
        checksum += ws.pareto_front(&points3).unwrap().len() as f64;
        checksum += ws.crowding_distance(&points2).unwrap()[0];
        checksum += ws.hypervolume(&points2, &reference2).unwrap();
        checksum += ws.hypervolume(&points3, &reference3).unwrap();
    }
    let after = allocations();
    assert!(checksum.is_finite());
    assert_eq!(
        after - before,
        0,
        "warm MOO workspace calls performed {} heap allocations",
        after - before
    );
}

#[test]
fn warm_incremental_hv2_is_allocation_free() {
    let points = fixture_objectives(512, 2);
    let mut archive = IncrementalHv2::new(&[101.0, 101.0]).unwrap();
    // warm-up: the staircase grows to its steady-state capacity, which
    // `clear` retains
    archive.reset_from(&points).unwrap();
    let before = allocations();
    archive.clear();
    let mut accepted = 0u64;
    for p in &points {
        if archive.insert(p[0], p[1]).unwrap() {
            accepted += 1;
        }
    }
    let hv = archive.recompute();
    let after = allocations();
    assert!(hv.is_finite() && accepted > 0);
    assert_eq!(
        after - before,
        0,
        "warm incremental-hv inserts performed {} heap allocations",
        after - before
    );
}

#[test]
fn warm_island_generation_loop_is_allocation_free() {
    use hwpr_search::island::{IslandConfig, IslandHarness};
    use hwpr_search::{Evaluator, Fitness, SearchClock};

    /// Scores-kind evaluator with an allocation-free buffer-reusing fast
    /// path, so the measurement isolates the island machinery itself —
    /// tournament selection, crossover/mutation, the dedup set and the
    /// survivor sorts. (The frozen engine's own warm-path zero-allocation
    /// property is pinned separately above; it cannot hold for an
    /// evolving population, whose fresh offspring each pay a one-time
    /// encoding.)
    struct IndexScoreEvaluator;

    impl Evaluator for IndexScoreEvaluator {
        fn name(&self) -> String {
            "index-scores".to_string()
        }

        fn evaluate(
            &mut self,
            archs: &[hwpr_nasbench::Architecture],
            _clock: &mut SearchClock,
        ) -> hwpr_search::Result<Fitness> {
            Ok(Fitness::Scores(
                archs
                    .iter()
                    .map(|a| (a.index() % 9973) as f64 / 9973.0)
                    .collect(),
            ))
        }

        fn evaluate_scores_into(
            &mut self,
            archs: &[hwpr_nasbench::Architecture],
            _clock: &mut SearchClock,
            out: &mut Vec<f64>,
        ) -> hwpr_search::Result<bool> {
            out.clear();
            out.extend(archs.iter().map(|a| (a.index() % 9973) as f64 / 9973.0));
            Ok(true)
        }

        fn calls_per_arch(&self) -> usize {
            1
        }
    }

    let config = IslandConfig {
        population: 24,
        generations: usize::MAX,
        ..IslandConfig::small(SearchSpaceId::NasBench201)
    };
    let mut harness =
        IslandHarness::new(config, Box::new(IndexScoreEvaluator)).expect("harness builds");
    // warm-up: offspring/fitness/selection buffers reach their
    // steady-state footprint
    for _ in 0..5 {
        harness.step().expect("warm-up step");
    }
    let before = allocations();
    for _ in 0..3 {
        harness.step().expect("measured step");
    }
    let after = allocations();
    assert!(harness.evaluations() > 0);
    assert_eq!(
        after - before,
        0,
        "warm island generation steps performed {} heap allocations",
        after - before
    );
}

#[test]
fn warm_serving_loop_is_allocation_free() {
    use hwpr_serve::{
        BatchQueue, ModelRegistry, Pending, PredictKind, ReplySink, ServeConfig, WorkerState,
    };
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    /// Reply transport that reuses one buffer — stands in for the TCP
    /// sink so the measurement covers the queue + worker + engine loop
    /// without socket noise.
    struct BufferSink {
        last: std::sync::Mutex<Vec<u8>>,
        frames: std::sync::atomic::AtomicU64,
    }

    impl ReplySink for BufferSink {
        fn send(&self, frame: &[u8]) {
            let mut last = self.last.lock().expect("sink lock");
            last.clear();
            last.extend_from_slice(frame);
            self.frames
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    let registry = ModelRegistry::new();
    let nas = Arc::new(fixture_model(32));
    nas.freeze_with(16, Precision::F32);
    registry.publish("default", nas);
    let model = registry.get("default").expect("published");
    let archs = fixture_archs(SearchSpaceId::NasBench201, 24);
    let config = ServeConfig {
        max_batch: 64,
        batch_deadline: Duration::ZERO,
        request_timeout: Duration::from_secs(600),
        ..ServeConfig::default()
    };
    let queue = BatchQueue::new(&config);
    let mut worker = WorkerState::new(&config, hwpr_obs::SpanContext::NONE);
    let sink = Arc::new(BufferSink {
        last: std::sync::Mutex::new(Vec::new()),
        frames: std::sync::atomic::AtomicU64::new(0),
    });

    // uneven interleaved-client windows, so the coalesced forward and
    // the per-request reply split both get exercised
    let windows: [std::ops::Range<usize>; 3] = [0..7, 7..12, 12..24];
    let mut round = |request_id: u64| {
        for (i, window) in windows.iter().enumerate() {
            let mut buf = queue.take_arch_buf();
            buf.extend_from_slice(&archs[window.clone()]);
            queue
                .push(Pending {
                    request_id: request_id + i as u64,
                    kind: PredictKind::Scores,
                    model: Arc::clone(&model),
                    slot: 0,
                    archs: buf,
                    reply: Arc::clone(&sink) as Arc<dyn ReplySink>,
                    arrived: Instant::now(),
                })
                .expect("queue has room");
        }
        while worker.try_run_once(&queue) {}
    };
    // warm-up: queue ring, arch pool, worker staging/output/frame
    // buffers and the engine arena reach steady state
    for r in 0..5 {
        round(r * 10);
    }
    let before = allocations();
    for r in 5..8 {
        round(r * 10);
    }
    let after = allocations();
    assert_eq!(
        sink.frames.load(std::sync::atomic::Ordering::Relaxed),
        8 * windows.len() as u64,
        "every request must have been answered"
    );
    assert_eq!(
        after - before,
        0,
        "warm serving loop performed {} heap allocations",
        after - before
    );
}

#[test]
fn steady_state_frozen_inference_is_allocation_free() {
    let model = fixture_model(32);
    let archs = fixture_archs(SearchSpaceId::NasBench201, 40);
    let mut scores = Vec::new();
    // all three panel precisions must share the zero-allocation property:
    // the f32/f16 paths draw from the arena pool alone, the int8 path
    // additionally reuses its thread-local quantisation scratch
    for precision in [Precision::F32, Precision::F16, Precision::Int8] {
        // chunk size 16 leaves an uneven final chunk of 8, so both chunk
        // shapes get warmed into the arena's buffer pool
        model.freeze_with(16, precision);
        // warm-up: encodes the architectures into the cache, grows the
        // arena's pool/scratch and the output buffer to steady state
        for _ in 0..3 {
            scores.clear();
            model
                .predict_scores_into(&archs, Platform::EdgeGpu, &mut scores)
                .unwrap();
        }
        let before = allocations();
        let mut sum = 0.0;
        for _ in 0..3 {
            scores.clear();
            model
                .predict_scores_into(&archs, Platform::EdgeGpu, &mut scores)
                .unwrap();
            sum += scores.iter().sum::<f64>();
        }
        let after = allocations();
        assert!(sum.is_finite());
        assert_eq!(scores.len(), archs.len());
        assert_eq!(
            after - before,
            0,
            "steady-state {} inference performed {} heap allocations",
            precision.label(),
            after - before
        );
    }
}
