//! Regenerates Table III (final hypervolume, 8 methods x 3 datasets).
fn main() {
    let harness = hwpr_experiments::Harness::new();
    let report = hwpr_experiments::exps::table3::run(&harness);
    hwpr_experiments::write_report("table3_hypervolume", &report);
}
