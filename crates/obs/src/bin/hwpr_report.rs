//! Summarizes a telemetry JSONL run record into a human-readable table.
//!
//! ```text
//! hwpr-report telemetry.jsonl        # read a file
//! some-run | hwpr-report -           # read stdin
//! ```

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let source = match args.as_slice() {
        [path] => path.clone(),
        _ => {
            eprintln!("usage: hwpr-report <telemetry.jsonl | ->");
            return ExitCode::FAILURE;
        }
    };
    let text = if source == "-" {
        let mut buf = String::new();
        if let Err(err) = std::io::stdin().read_to_string(&mut buf) {
            eprintln!("hwpr-report: reading stdin: {err}");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(&source) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("hwpr-report: reading {source}: {err}");
                return ExitCode::FAILURE;
            }
        }
    };
    match hwpr_obs::report::parse_jsonl(&text) {
        Ok(events) => {
            print!("{}", hwpr_obs::report::summarize(&events));
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("hwpr-report: {err}");
            ExitCode::FAILURE
        }
    }
}
