//! Reduced-precision weight panels for the prepacked inference GEMMs.
//!
//! The frozen inference engine multiplies fixed trained weights against
//! ever-changing activations, so the weights can be re-encoded once at
//! freeze time:
//!
//! - **f16** panels store each weight as an IEEE binary16 half. The kernel
//!   widens each lane back to f32 and accumulates in f32 with the same
//!   `k`-order as the f32 driver — outputs differ from f32 only by the
//!   one-time rounding of the weights.
//! - **int8** panels store each weight as a signed byte with one f32 scale
//!   per *output channel* (column). Activations are quantised per row on
//!   the fly to unsigned bytes over an asymmetric zero-including range
//!   (scale + zero-point per row); the dot product runs in exact i32
//!   integer arithmetic and a fixed-order epilogue subtracts the
//!   zero-point correction and applies the two scales. Because every step
//!   is either exact integer math or a fixed float expression, int8
//!   results are bit-identical across targets and across batch splits
//!   (each output row depends only on its own activation row).
//!
//! Both reduced-precision layouts keep the `NR`-column strip structure of
//! the f32 panels so the drivers share their loop shape with
//! [`crate::gemm`].

use crate::gemm::{MR, NR};

/// Storage precision of a [`crate::PackedWeight`] panel, chosen at freeze
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full-precision panels: bit-identical to the unpacked GEMM.
    #[default]
    F32,
    /// Half-precision weights, f32 accumulate; halves panel memory.
    F16,
    /// Per-output-channel int8 weights with on-the-fly u8 activation
    /// quantisation and exact i32 accumulate; quarter panel memory.
    Int8,
}

impl Precision {
    /// Canonical lower-case name (`"f32"` / `"f16"` / `"int8"`).
    pub fn label(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::F16 => "f16",
            Precision::Int8 => "int8",
        }
    }

    /// Parses a `HWPR_INFER_PRECISION`-style spec (case-insensitive,
    /// surrounding whitespace ignored).
    pub fn parse(spec: &str) -> Option<Self> {
        match spec.trim().to_ascii_lowercase().as_str() {
            "f32" => Some(Precision::F32),
            "f16" => Some(Precision::F16),
            "int8" | "i8" => Some(Precision::Int8),
            _ => None,
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

// ---------------------------------------------------------------------------
// IEEE binary16 conversion (software; the kernels widen with hardware
// instructions where the target has them)
// ---------------------------------------------------------------------------

/// Converts an f32 to IEEE binary16 bits with round-to-nearest-even.
pub(crate) fn f32_to_half(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;
    if exp == 0xff {
        // inf / NaN: keep a quiet-NaN payload bit so NaNs stay NaNs
        return sign | 0x7c00 | if mant != 0 { 0x0200 } else { 0 };
    }
    // unbiased exponent, rebiased for binary16
    let e = exp - 127 + 15;
    if e >= 0x1f {
        return sign | 0x7c00; // overflow to infinity
    }
    if e <= 0 {
        if e < -10 {
            return sign; // underflow to zero
        }
        // subnormal half: shift the (implicit-1) mantissa into place
        let m = mant | 0x0080_0000;
        let shift = (14 - e) as u32;
        let half = (m >> shift) as u16;
        let rem = m & ((1 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        if rem > halfway || (rem == halfway && half & 1 == 1) {
            return sign | (half + 1);
        }
        return sign | half;
    }
    let half = ((e as u32) << 10 | mant >> 13) as u16;
    let rem = mant & 0x1fff;
    if rem > 0x1000 || (rem == 0x1000 && half & 1 == 1) {
        sign | (half + 1) // may carry into the exponent; that is correct
    } else {
        sign | half
    }
}

/// Widens IEEE binary16 bits back to f32 (exact).
// Only the portable (non-AVX-512F) f16 micro-kernel and tests widen in
// software; hardware targets use vcvtph2ps.
#[cfg_attr(target_feature = "avx512f", allow(dead_code))]
#[inline(always)]
pub(crate) fn half_to_f32(h: u16) -> f32 {
    let sign = (h as u32 & 0x8000) << 16;
    let exp = (h >> 10) & 0x1f;
    let mant = h as u32 & 0x03ff;
    let bits = match exp {
        0 => {
            if mant == 0 {
                sign // signed zero
            } else {
                // subnormal half: normalise into an f32 exponent
                let shift = mant.leading_zeros() - 21;
                let m = (mant << (shift + 1)) & 0x03ff;
                sign | ((113 - shift) << 23) | (m << 13)
            }
        }
        0x1f => sign | 0x7f80_0000 | (mant << 13), // inf / NaN
        _ => sign | ((exp as u32 + 112) << 23) | (mant << 13),
    };
    f32::from_bits(bits)
}

// ---------------------------------------------------------------------------
// f16 panels
// ---------------------------------------------------------------------------

/// Re-encodes an f32 panel (already in driver order, see
/// [`crate::gemm::pack_b_full`]) as binary16.
pub(crate) fn encode_half_panels(panels: &[f32], dst: &mut Vec<u16>) {
    dst.clear();
    dst.extend(panels.iter().map(|&v| f32_to_half(v)));
}

/// `C = A @ B` against binary16 panels: each `B` lane is widened to f32 and
/// the accumulation runs in f32, in the exact `k`-order of the f32 driver.
///
/// The panel layout matches [`crate::gemm::pack_b_full`] lane for lane
/// (same `jc`/`pc` blocking, same strips), and `A` (always the row-major
/// activation matrix here) is read in place like the f32 driver's direct
/// path — including the store-direct full-tile case — so this is the f32
/// prepacked driver with a widening `B` load in the micro-kernel.
pub(crate) fn gemm_prepacked_f16(
    (m, n, k): (usize, usize, usize),
    a: &[f32],
    packed_b: &[u16],
    c: &mut [f32],
) {
    use crate::gemm::{KC, MC, NC};
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0.0);
        return;
    }
    let _timer = crate::telemetry::KernelTimer::gemm((m, n, k));
    let mut b_offset = 0;
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let panel_len = nc.div_ceil(NR) * NR * kc;
            let b_panel = &packed_b[b_offset..b_offset + panel_len];
            b_offset += panel_len;
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                for jr in (0..nc).step_by(NR) {
                    let b_strip = &b_panel[(jr / NR) * NR * kc..];
                    for ir in (0..mc).step_by(MR) {
                        let live_rows = MR.min(mc - ir);
                        let live_cols = NR.min(nc - jr);
                        if pc == 0 && live_rows == MR && live_cols == NR {
                            // overwrite mode, full tile: skip the stack
                            // accumulator entirely
                            let a_tile = &a[(ic + ir) * k..];
                            let c_tile = &mut c[(ic + ir) * n + jc + jr..];
                            micro_kernel_f16_direct_store(kc, a_tile, k, b_strip, c_tile, n);
                            continue;
                        }
                        let a_tile = &a[(ic + ir) * k + pc..];
                        let mut acc = [[0.0f32; NR]; MR];
                        if live_rows == MR {
                            micro_kernel_f16_direct(kc, a_tile, k, b_strip, &mut acc);
                        } else {
                            micro_kernel_f16_direct_partial(
                                kc, a_tile, k, live_rows, b_strip, &mut acc,
                            );
                        }
                        for (ii, acc_row) in acc.iter().enumerate().take(live_rows) {
                            let row = (ic + ir + ii) * n + jc + jr;
                            let dst = &mut c[row..row + live_cols];
                            if pc == 0 {
                                dst.copy_from_slice(&acc_row[..live_cols]);
                            } else {
                                for (cell, &v) in dst.iter_mut().zip(acc_row) {
                                    *cell += v;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// AVX-512 f16 micro-kernel reading `A` in place (row stride `lda`): one
/// `vcvtph2ps` widen per `NR` strip row, then the same FMA chain as the
/// f32 direct kernel.
#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
#[inline]
fn micro_kernel_f16_direct(
    kc: usize,
    a: &[f32],
    lda: usize,
    b_strip: &[u16],
    acc: &mut [[f32; NR]; MR],
) {
    use std::arch::x86_64::*;
    const { assert!(NR == 16, "one zmm register holds exactly NR lanes") };
    assert!(a.len() > (MR - 1) * lda + kc - 1, "A tile out of bounds");
    assert!(b_strip.len() >= kc * NR, "packed B strip too short");
    // SAFETY: AVX-512F is statically enabled by the cfg above (vcvtph2ps
    // on zmm is part of AVX-512F), and the asserts bound every pointer.
    unsafe {
        let mut rows = [_mm512_setzero_ps(); MR];
        for (row, dst) in rows.iter_mut().zip(acc.iter()) {
            *row = _mm512_loadu_ps(dst.as_ptr());
        }
        let pa = a.as_ptr();
        let mut pb = b_strip.as_ptr();
        for p in 0..kc {
            let half = _mm256_loadu_si256(pb as *const __m256i);
            let b = _mm512_cvtph_ps(half);
            for (i, row) in rows.iter_mut().enumerate() {
                let av = _mm512_set1_ps(*pa.add(i * lda + p));
                *row = _mm512_fmadd_ps(av, b, *row);
            }
            pb = pb.add(NR);
        }
        for (dst, row) in acc.iter_mut().zip(rows.iter()) {
            _mm512_storeu_ps(dst.as_mut_ptr(), *row);
        }
    }
}

/// Portable in-place-`A` f16 micro-kernel: software widen, then the
/// portable f32 chain.
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx512f")))]
#[inline(always)]
fn micro_kernel_f16_direct(
    kc: usize,
    a: &[f32],
    lda: usize,
    b_strip: &[u16],
    acc: &mut [[f32; NR]; MR],
) {
    debug_assert!(a.len() > (MR - 1) * lda + kc - 1);
    debug_assert!(b_strip.len() >= kc * NR);
    for p in 0..kc {
        let b_halfs = &b_strip[p * NR..(p + 1) * NR];
        let mut b_vals = [0.0f32; NR];
        for (v, &h) in b_vals.iter_mut().zip(b_halfs) {
            *v = half_to_f32(h);
        }
        for (i, row) in acc.iter_mut().enumerate() {
            let a_val = a[i * lda + p];
            for (cell, &b_val) in row.iter_mut().zip(&b_vals) {
                *cell += a_val * b_val;
            }
        }
    }
}

/// [`micro_kernel_f16_direct`] for the overwrite case (`pc == 0`, full
/// `MR x NR` tile): accumulates from zero in registers and stores the
/// finished tile straight into `C` (row stride `ldc`).
#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
#[inline]
fn micro_kernel_f16_direct_store(
    kc: usize,
    a: &[f32],
    lda: usize,
    b_strip: &[u16],
    c: &mut [f32],
    ldc: usize,
) {
    use std::arch::x86_64::*;
    assert!(a.len() > (MR - 1) * lda + kc - 1, "A tile out of bounds");
    assert!(b_strip.len() >= kc * NR, "packed B strip too short");
    assert!(c.len() >= (MR - 1) * ldc + NR, "C tile out of bounds");
    // SAFETY: AVX-512F is statically enabled by the cfg; the asserts bound
    // every read and write below.
    unsafe {
        let mut rows = [_mm512_setzero_ps(); MR];
        let pa = a.as_ptr();
        let mut pb = b_strip.as_ptr();
        for p in 0..kc {
            let half = _mm256_loadu_si256(pb as *const __m256i);
            let b = _mm512_cvtph_ps(half);
            for (i, row) in rows.iter_mut().enumerate() {
                let av = _mm512_set1_ps(*pa.add(i * lda + p));
                *row = _mm512_fmadd_ps(av, b, *row);
            }
            pb = pb.add(NR);
        }
        let pc_out = c.as_mut_ptr();
        for (i, row) in rows.iter().enumerate() {
            _mm512_storeu_ps(pc_out.add(i * ldc), *row);
        }
    }
}

/// Portable store-direct f16 micro-kernel (see the AVX-512 variant above).
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx512f")))]
#[inline(always)]
fn micro_kernel_f16_direct_store(
    kc: usize,
    a: &[f32],
    lda: usize,
    b_strip: &[u16],
    c: &mut [f32],
    ldc: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    micro_kernel_f16_direct(kc, a, lda, b_strip, &mut acc);
    for (i, row) in acc.iter().enumerate() {
        c[i * ldc..i * ldc + NR].copy_from_slice(row);
    }
}

/// In-place-`A` f16 micro-kernel for the final partial row tile
/// (`live < MR`): per-element ops and `k`-order match the full kernels
/// exactly (fused on AVX-512F, two roundings elsewhere).
#[inline]
fn micro_kernel_f16_direct_partial(
    kc: usize,
    a: &[f32],
    lda: usize,
    live: usize,
    b_strip: &[u16],
    acc: &mut [[f32; NR]; MR],
) {
    debug_assert!(live < MR && live > 0);
    debug_assert!(b_strip.len() >= kc * NR);
    for p in 0..kc {
        let b_halfs = &b_strip[p * NR..(p + 1) * NR];
        let mut b_vals = [0.0f32; NR];
        for (v, &h) in b_vals.iter_mut().zip(b_halfs) {
            *v = half_to_f32(h);
        }
        for (i, row) in acc.iter_mut().enumerate().take(live) {
            let a_val = a[i * lda + p];
            for (cell, &b_val) in row.iter_mut().zip(&b_vals) {
                #[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
                {
                    *cell = a_val.mul_add(b_val, *cell);
                }
                #[cfg(not(all(target_arch = "x86_64", target_feature = "avx512f")))]
                {
                    *cell += a_val * b_val;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// int8 panels
// ---------------------------------------------------------------------------

/// An int8-quantised `B` operand: per-output-channel scales, bytes in
/// `NR`-column strips of `k`-groups-of-4 (the `vpdpbusd` lane layout).
#[derive(Debug, Default)]
pub(crate) struct Int8Panels {
    /// Quantised weights: for each `NR`-column strip, `kq/4` groups of
    /// `NR x 4` bytes (4 consecutive `k` values per column lane).
    pub data: Vec<i8>,
    /// Per-column dequantisation scale (`amax / 127`).
    pub scales: Vec<f32>,
    /// Per-column `sum(q)`: multiplied by each row's activation
    /// zero-point in the epilogue to remove the unsigned offset exactly.
    pub colsums: Vec<i32>,
    /// `k` rounded up to a multiple of 4 (zero-padded).
    pub kq: usize,
}

impl Int8Panels {
    /// Quantises a row-major `k x n` weight into the strip layout.
    /// Buffers retain capacity across repacks.
    pub fn pack(&mut self, b: &[f32], (k, n): (usize, usize)) {
        let kq = k.div_ceil(4) * 4;
        self.kq = kq;
        self.scales.clear();
        self.scales.reserve(n);
        for j in 0..n {
            let mut amax = 0.0f32;
            for i in 0..k {
                amax = amax.max(b[i * n + j].abs());
            }
            self.scales
                .push(if amax > 0.0 { amax / 127.0 } else { 1.0 });
        }
        let strips = n.div_ceil(NR);
        self.data.clear();
        self.data.resize(strips * NR * kq, 0);
        self.colsums.clear();
        self.colsums.reserve(n);
        for j in 0..n {
            let strip = j / NR;
            let lane = j % NR;
            let scale = self.scales[j];
            let mut sum = 0i32;
            for i in 0..k {
                let q = (b[i * n + j] / scale).round().clamp(-127.0, 127.0) as i32;
                sum += q;
                // strip base + k-group-of-4 base + lane base + byte-in-group
                let idx = strip * NR * kq + (i / 4) * NR * 4 + lane * 4 + i % 4;
                self.data[idx] = q as i8;
            }
            self.colsums.push(sum);
        }
    }
}

thread_local! {
    /// Per-thread activation-quantisation scratch: `(bytes, row scales,
    /// row zero-points)`. Bounded by the largest `m x kq` activation a
    /// thread multiplies, so every int8 GEMM after warm-up is
    /// allocation-free.
    static QUANT_SCRATCH: std::cell::RefCell<(Vec<u8>, Vec<f32>, Vec<i32>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new(), Vec::new())) };
}

/// `C = A @ B` against int8 panels.
///
/// Each activation row is quantised *asymmetrically* to unsigned bytes
/// with its own scale and zero-point over the zero-including range
/// `[min(0, min), max(0, max)]` — post-ReLU rows use all 255 levels
/// instead of wasting the negative half. The inner product runs in exact
/// integer arithmetic; a fixed-order epilogue subtracts `zp * colsum`
/// (exact in i64) and applies both scales in f32. Rows are quantised
/// independently, so any batch split of `A` reproduces the same output
/// bits.
pub(crate) fn gemm_prepacked_i8(
    (m, n, k): (usize, usize, usize),
    a: &[f32],
    panels: &Int8Panels,
    c: &mut [f32],
) {
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0.0);
        return;
    }
    let _timer = crate::telemetry::KernelTimer::gemm((m, n, k));
    let kq = panels.kq;
    QUANT_SCRATCH.with(|scratch| {
        let (qa, sa, za) = &mut *scratch.borrow_mut();
        quantize_rows(a, (m, k), kq, qa, sa, za);
        for jr in (0..n).step_by(NR) {
            let live_cols = NR.min(n - jr);
            let b_strip = &panels.data[(jr / NR) * NR * kq..];
            for ir in (0..m).step_by(MR) {
                let live_rows = MR.min(m - ir);
                let mut acc = [[0i32; NR]; MR];
                micro_kernel_i8(kq / 4, &qa[ir * kq..], live_rows, b_strip, &mut acc);
                dequant_rows(
                    &acc,
                    live_rows,
                    live_cols,
                    (&sa[ir..], &za[ir..]),
                    (&panels.scales[jr..], &panels.colsums[jr..]),
                    &mut c[ir * n + jr..],
                    n,
                );
            }
        }
    });
}

/// Dequantisation epilogue for one `MR x NR` tile: per cell,
/// `scale_a * (scale_b * (acc - zp * colsum))`, all in the fixed order of
/// the scalar expression. The integer part is exact in i32: `|acc|` and
/// `|zp * colsum|` are both bounded by `255 * 127 * k`, so nothing wraps
/// for any `k` below ~66k, and the `as f32` conversion of the difference
/// (< 2^24) is exact.
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx512f")))]
#[inline(always)]
fn dequant_rows(
    acc: &[[i32; NR]; MR],
    live_rows: usize,
    live_cols: usize,
    (sa, za): (&[f32], &[i32]),
    (wscales, colsums): (&[f32], &[i32]),
    c: &mut [f32],
    ldc: usize,
) {
    for ii in 0..live_rows {
        let scale_a = sa[ii];
        let zp = za[ii];
        let dst = &mut c[ii * ldc..ii * ldc + live_cols];
        for (jj, cell) in dst.iter_mut().enumerate() {
            let centered = (acc[ii][jj] - zp * colsums[jj]) as f32;
            *cell = scale_a * (wscales[jj] * centered);
        }
    }
}

/// AVX-512 tile epilogue: one masked 16-lane
/// `vpmulld/vpsubd/vcvtdq2ps/vmulps` pass per live row. Same exact i32
/// arithmetic and f32 rounding order as the portable epilogue.
#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
#[inline(always)]
fn dequant_rows(
    acc: &[[i32; NR]; MR],
    live_rows: usize,
    live_cols: usize,
    (sa, za): (&[f32], &[i32]),
    (wscales, colsums): (&[f32], &[i32]),
    c: &mut [f32],
    ldc: usize,
) {
    use std::arch::x86_64::*;
    const { assert!(NR == 16, "one zmm register holds NR lanes") };
    assert!(live_rows <= MR && live_cols <= NR);
    assert!(sa.len() >= live_rows && za.len() >= live_rows);
    assert!(wscales.len() >= live_cols && colsums.len() >= live_cols);
    assert!(live_rows == 0 || c.len() >= (live_rows - 1) * ldc + live_cols);
    // SAFETY: AVX-512F is statically enabled by the cfg; the asserts bound
    // every pointer and the column mask limits lanes to `live_cols`.
    unsafe {
        let mask: __mmask16 = if live_cols == NR {
            0xffff
        } else {
            (1u16 << live_cols) - 1
        };
        let cs = _mm512_maskz_loadu_epi32(mask, colsums.as_ptr());
        let ws = _mm512_maskz_loadu_ps(mask, wscales.as_ptr());
        for ii in 0..live_rows {
            let accv = _mm512_loadu_si512(acc[ii].as_ptr() as *const _);
            let centered =
                _mm512_sub_epi32(accv, _mm512_mullo_epi32(_mm512_set1_epi32(za[ii]), cs));
            let scaled = _mm512_mul_ps(ws, _mm512_cvtepi32_ps(centered));
            let out = _mm512_mul_ps(_mm512_set1_ps(sa[ii]), scaled);
            _mm512_mask_storeu_ps(c.as_mut_ptr().add(ii * ldc), mask, out);
        }
    }
}

/// Quantises `m x k` activations row-wise into `m x kq` unsigned bytes
/// over the zero-including range `[min(0, min), max(0, max)]` (asymmetric;
/// zero is exactly representable at the zero-point). The `kq` zero-pads
/// multiply the zero weight pad, so their byte value never contributes.
fn quantize_rows(
    a: &[f32],
    (m, k): (usize, usize),
    kq: usize,
    qa: &mut Vec<u8>,
    sa: &mut Vec<f32>,
    za: &mut Vec<i32>,
) {
    qa.clear();
    qa.resize(m * kq, 0);
    sa.clear();
    sa.reserve(m);
    za.clear();
    za.reserve(m);
    #[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
    {
        quantize_rows_avx512(a, (m, k), kq, qa, sa, za);
        return;
    }
    #[allow(unreachable_code)]
    for r in 0..m {
        let row = &a[r * k..(r + 1) * k];
        let mut lo = 0.0f32;
        let mut hi = 0.0f32;
        for &v in row {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if hi > lo {
            let scale = (hi - lo) / 255.0;
            let inv = 255.0 / (hi - lo);
            // `round_ties_even` lowers to a single rounding instruction where
            // available; `round` is a libm call per element and dominates the
            // whole quantised GEMM at these panel sizes. Ties land on an
            // adjacent quantisation bin either way (sub-lsb difference).
            let zp = (-lo * inv).round_ties_even() as i32; // in [0, 255]
            let dst = &mut qa[r * kq..r * kq + k];
            for (d, &v) in dst.iter_mut().zip(row) {
                *d = ((v * inv).round_ties_even() as i32 + zp).clamp(0, 255) as u8;
            }
            sa.push(scale);
            za.push(zp);
        } else {
            sa.push(0.0); // all-zero row: bytes stay 0, zero-point 0
            za.push(0);
        }
    }
}

/// AVX-512 row quantiser: the rows here are panel-`k` long (tens of
/// elements), so scalar per-element rounding dominates the whole int8 GEMM.
/// One masked 16-lane pass per row does the min/max scan and a second does
/// `round -> +zp -> clamp -> narrow` (`vrndscaleps` matches
/// `round_ties_even`; values are integral before `vcvtps2dq`, so the cast
/// is exact and the bytes are bit-identical to the scalar path).
#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
fn quantize_rows_avx512(
    a: &[f32],
    (m, k): (usize, usize),
    kq: usize,
    qa: &mut [u8],
    sa: &mut Vec<f32>,
    za: &mut Vec<i32>,
) {
    use std::arch::x86_64::*;
    assert!(a.len() >= m * k && qa.len() >= m * kq && kq >= k);
    // SAFETY: AVX-512F is statically enabled by the cfg; the assert bounds
    // every pointer, and tail lanes are masked to the live `k - c` prefix.
    unsafe {
        for r in 0..m {
            let row = a.as_ptr().add(r * k);
            let mut lo_v = _mm512_setzero_ps();
            let mut hi_v = _mm512_setzero_ps();
            let mut c = 0usize;
            while c + 16 <= k {
                let v = _mm512_loadu_ps(row.add(c));
                lo_v = _mm512_min_ps(lo_v, v);
                hi_v = _mm512_max_ps(hi_v, v);
                c += 16;
            }
            if c < k {
                // masked-off lanes read as +0.0, which the zero-including
                // quantisation range absorbs
                let mask: __mmask16 = (1u16 << (k - c)) - 1;
                let v = _mm512_maskz_loadu_ps(mask, row.add(c));
                lo_v = _mm512_min_ps(lo_v, v);
                hi_v = _mm512_max_ps(hi_v, v);
            }
            let lo = _mm512_reduce_min_ps(lo_v);
            let hi = _mm512_reduce_max_ps(hi_v);
            if hi > lo {
                let inv = 255.0 / (hi - lo);
                let zp = (-lo * inv).round_ties_even() as i32; // in [0, 255]
                let invv = _mm512_set1_ps(inv);
                let zpv = _mm512_set1_epi32(zp);
                let zerov = _mm512_setzero_si512();
                let topv = _mm512_set1_epi32(255);
                let dst = qa.as_mut_ptr().add(r * kq);
                let quant = |v: __m512| {
                    let q = _mm512_cvtps_epi32(_mm512_roundscale_ps::<0>(_mm512_mul_ps(v, invv)));
                    _mm512_min_epi32(_mm512_max_epi32(_mm512_add_epi32(q, zpv), zerov), topv)
                };
                let mut c = 0usize;
                while c + 16 <= k {
                    let q = quant(_mm512_loadu_ps(row.add(c)));
                    _mm512_mask_cvtepi32_storeu_epi8(dst.add(c) as *mut _, 0xffff, q);
                    c += 16;
                }
                if c < k {
                    let mask: __mmask16 = (1u16 << (k - c)) - 1;
                    let q = quant(_mm512_maskz_loadu_ps(mask, row.add(c)));
                    _mm512_mask_cvtepi32_storeu_epi8(dst.add(c) as *mut _, mask, q);
                }
                sa.push((hi - lo) / 255.0);
                za.push(zp);
            } else {
                sa.push(0.0); // all-zero row: bytes stay 0, zero-point 0
                za.push(0);
            }
        }
    }
}

/// AVX-512 VNNI int8 micro-kernel: per 4-deep `k` group, broadcast 4
/// activation bytes as one dword and issue a single `vpdpbusd` against the
/// `NR x 4` weight block (64 bytes = one zmm).
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx512f",
    target_feature = "avx512vnni"
))]
#[inline]
fn micro_kernel_i8(
    kq4: usize,
    qa: &[u8],
    live_rows: usize,
    b_strip: &[i8],
    acc: &mut [[i32; NR]; MR],
) {
    use std::arch::x86_64::*;
    const { assert!(NR == 16, "one zmm register holds NR i32 lanes") };
    assert!(b_strip.len() >= kq4 * NR * 4, "packed int8 strip too short");
    assert!(qa.len() >= (live_rows - 1) * kq4 * 4 + kq4 * 4 || live_rows == 0);
    // SAFETY: VNNI is statically enabled by the cfg; the asserts bound
    // every pointer. Row stride in `qa` is `kq4 * 4` bytes.
    unsafe {
        let stride = kq4 * 4;
        let mut rows = [_mm512_setzero_si512(); MR];
        let pb = b_strip.as_ptr();
        for g in 0..kq4 {
            let b = _mm512_loadu_si512(pb.add(g * NR * 4) as *const _);
            for (i, row) in rows.iter_mut().take(live_rows).enumerate() {
                let dword = (qa.as_ptr().add(i * stride + g * 4) as *const i32).read_unaligned();
                let a = _mm512_set1_epi32(dword);
                *row = _mm512_dpbusd_epi32(*row, a, b);
            }
        }
        for (dst, row) in acc.iter_mut().zip(rows.iter()) {
            _mm512_storeu_si512(dst.as_mut_ptr() as *mut _, *row);
        }
    }
}

/// Portable int8 micro-kernel: the same exact u8 x i8 -> i32 arithmetic as
/// the VNNI kernel, so results are bit-identical across targets.
#[cfg(not(all(
    target_arch = "x86_64",
    target_feature = "avx512f",
    target_feature = "avx512vnni"
)))]
#[inline(always)]
fn micro_kernel_i8(
    kq4: usize,
    qa: &[u8],
    live_rows: usize,
    b_strip: &[i8],
    acc: &mut [[i32; NR]; MR],
) {
    debug_assert!(b_strip.len() >= kq4 * NR * 4);
    let stride = kq4 * 4;
    for g in 0..kq4 {
        let b_block = &b_strip[g * NR * 4..(g + 1) * NR * 4];
        for (i, acc_row) in acc.iter_mut().take(live_rows).enumerate() {
            let a_bytes = &qa[i * stride + g * 4..i * stride + g * 4 + 4];
            for (j, cell) in acc_row.iter_mut().enumerate() {
                let b_bytes = &b_block[j * 4..j * 4 + 4];
                let mut dot = 0i32;
                for (&av, &bv) in a_bytes.iter().zip(b_bytes) {
                    dot += av as i32 * bv as i32;
                }
                *cell += dot;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_parse_and_label() {
        assert_eq!(Precision::parse("f32"), Some(Precision::F32));
        assert_eq!(Precision::parse(" F16 "), Some(Precision::F16));
        assert_eq!(Precision::parse("INT8"), Some(Precision::Int8));
        assert_eq!(Precision::parse("i8"), Some(Precision::Int8));
        assert_eq!(Precision::parse("fp64"), None);
        assert_eq!(Precision::parse(""), None);
        assert_eq!(Precision::Int8.label(), "int8");
        assert_eq!(Precision::default(), Precision::F32);
    }

    #[test]
    fn half_round_trip_is_exact_for_representables() {
        let representable = [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            0.5,
            65504.0,
            -65504.0,
            f32::powi(2.0, -14),  // smallest normal half
            f32::powi(2.0, -24),  // smallest subnormal half
            -f32::powi(2.0, -20), // mid-range subnormal
        ];
        for v in representable {
            assert_eq!(half_to_f32(f32_to_half(v)), v, "{v}");
        }
        // specials
        assert_eq!(half_to_f32(f32_to_half(f32::INFINITY)), f32::INFINITY);
        assert!(half_to_f32(f32_to_half(f32::NAN)).is_nan());
        // overflow saturates to infinity
        assert_eq!(half_to_f32(f32_to_half(1e6)), f32::INFINITY);
        // subnormal halves survive the round trip
        let tiny = half_to_f32(0x0001);
        assert!(tiny > 0.0);
        assert_eq!(f32_to_half(tiny), 0x0001);
    }

    #[test]
    fn half_rounding_is_nearest_evenic() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next half;
        // nearest-even rounds down to 1.0
        let halfway = 1.0 + f32::powi(2.0, -11);
        assert_eq!(half_to_f32(f32_to_half(halfway)), 1.0);
        // just above halfway rounds up
        let above = 1.0 + f32::powi(2.0, -11) + f32::powi(2.0, -20);
        assert_eq!(half_to_f32(f32_to_half(above)), 1.0 + f32::powi(2.0, -10));
    }

    #[test]
    fn int8_pack_records_scales_and_colsums() {
        // column 0 spans [-2, 2] -> scale 2/127; column 1 all zero -> 1.0
        let b = [2.0f32, 0.0, -2.0, 0.0, 1.0, 0.0];
        let mut panels = Int8Panels::default();
        panels.pack(&b, (3, 2));
        assert_eq!(panels.kq, 4);
        assert!((panels.scales[0] - 2.0 / 127.0).abs() < 1e-9);
        assert_eq!(panels.scales[1], 1.0);
        // q column 0 = [127, -127, 64], summing to 64
        assert_eq!(panels.colsums[0], 64);
        assert_eq!(panels.colsums[1], 0);
    }

    #[test]
    fn asymmetric_rows_use_the_full_u8_range() {
        // a non-negative (post-ReLU-style) row must map its max to 255
        // and zero to the zero-point 0
        let row = [0.0f32, 1.0, 2.0, 4.0];
        let (mut qa, mut sa, mut za) = (Vec::new(), Vec::new(), Vec::new());
        quantize_rows(&row, (1, 4), 4, &mut qa, &mut sa, &mut za);
        assert_eq!(za[0], 0);
        assert_eq!(&qa[..4], &[0, 64, 128, 255]);
        assert!((sa[0] - 4.0 / 255.0).abs() < 1e-9);
        // a mixed-sign row puts the zero-point strictly inside the range
        let row = [-1.0f32, 0.0, 3.0];
        quantize_rows(&row, (1, 3), 4, &mut qa, &mut sa, &mut za);
        assert_eq!(za[0], 64); // -(-1) * 255/4
        assert_eq!(qa[1], 64); // exact zero lands on the zero-point
        assert_eq!(qa[2], 255);
    }
}
