//! Serving throughput: the adaptive micro-batching win, measured through
//! the real stack — TCP framing, admission queue, coalesced frozen
//! forward, reply split.
//!
//! The headline comparison pits two configurations against the *same*
//! workload (concurrent batch-1 clients, pipelined):
//!
//! - `coalesced_b1` — `max_batch = 64`, 200 µs coalesce deadline: the
//!   queue merges concurrent singles into wide forwards;
//! - `uncoalesced_b1` — `max_batch = 1`, zero deadline: every request
//!   pays a full single-row forward (what a naive RPC wrapper does).
//!
//! Acceptance (asserted by CI bench-smoke): coalesced req/s >= 3x
//! uncoalesced. The margin comes from the frozen engine's batch-width
//! economics (PR 6: wide chunks amortise staging + dispatch), so the
//! fixture uses the repo's default `fast()` model size — big enough that
//! forward cost dominates loopback-TCP syscall overhead — served from
//! f16 panels, the precision with the steepest batch-1 dispatch floor.
//!
//! `client_b8` / `client_b64` row the same coalesced server under
//! clients that already batch, bounding what micro-batching still adds.
//! All scenarios also record p99 request latency (admission deadline +
//! forward + reply, measured client-side from send to receive).

use criterion::{criterion_group, criterion_main, record_metric, Criterion};
use hwpr_bench::{fixture_archs, fixture_dataset};
use hwpr_core::{HwPrNas, ModelConfig, Precision, TrainConfig};
use hwpr_hwmodel::Platform;
use hwpr_nasbench::{Architecture, SearchSpaceId};
use hwpr_serve::{ModelRegistry, PredictKind, ServeClient, ServeConfig, Server};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Requests each client keeps in flight. Deep enough that the admission
/// queue always holds coalesce partners for the `coalesced_b1` scenario.
const PIPELINE_DEPTH: usize = 16;

fn fixture() -> Arc<HwPrNas> {
    let data = fixture_dataset(48);
    let (model, _) = HwPrNas::fit(&data, &ModelConfig::fast(), &TrainConfig::tiny())
        .expect("training fixture failed");
    model.freeze_with(64, Precision::F16);
    Arc::new(model)
}

fn server_config(coalesce: bool) -> ServeConfig {
    if coalesce {
        ServeConfig {
            max_batch: 64,
            batch_deadline: Duration::from_micros(200),
            ..ServeConfig::default()
        }
    } else {
        ServeConfig {
            max_batch: 1,
            batch_deadline: Duration::ZERO,
            ..ServeConfig::default()
        }
    }
}

struct ScenarioResult {
    req_per_sec: f64,
    p99_us: f64,
}

/// Runs `clients` pipelining client threads against a fresh server and
/// returns aggregate request throughput and client-observed p99 latency.
fn run_scenario(
    model: &Arc<HwPrNas>,
    coalesce: bool,
    clients: usize,
    client_batch: usize,
    rounds: usize,
) -> ScenarioResult {
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("default", Arc::clone(model));
    let server = Server::start(registry, server_config(coalesce)).expect("server starts");
    let addr = server.addr();
    let archs = Arc::new(fixture_archs(SearchSpaceId::NasBench201, 256));

    let started = Instant::now();
    let mut handles = Vec::new();
    for worker in 0..clients {
        let archs = Arc::clone(&archs);
        handles.push(std::thread::spawn(move || {
            let mut client = ServeClient::connect(addr).expect("client connects");
            // deterministic per-client workload: a sliding window over
            // the shared architecture population
            let window = |i: usize| {
                let at = (worker * 31 + i * client_batch) % (archs.len() - client_batch);
                &archs[at..at + client_batch]
            };
            let mut latencies_us = Vec::with_capacity(rounds);
            let mut sent_at = vec![Instant::now(); rounds + 1];
            let depth = PIPELINE_DEPTH.min(rounds);
            let mut scores = Vec::new();
            let mut next = 0usize;
            for _ in 0..depth {
                next += 1;
                sent_at[next] = Instant::now();
                client
                    .send_predict(
                        PredictKind::Scores,
                        "default",
                        Platform::EdgeGpu,
                        window(next),
                    )
                    .expect("send");
            }
            for _ in 0..rounds {
                scores.clear();
                let id = client.recv_scores(&mut scores).expect("recv") as usize;
                assert_eq!(scores.len(), client_batch);
                latencies_us.push(sent_at[id].elapsed().as_secs_f64() * 1e6);
                if next < rounds {
                    next += 1;
                    sent_at[next] = Instant::now();
                    client
                        .send_predict(
                            PredictKind::Scores,
                            "default",
                            Platform::EdgeGpu,
                            window(next),
                        )
                        .expect("send");
                }
            }
            latencies_us
        }));
    }
    let mut latencies: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let wall = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p99 = latencies[((latencies.len() - 1) * 99) / 100];
    ScenarioResult {
        req_per_sec: (clients * rounds) as f64 / wall.max(1e-9),
        p99_us: p99,
    }
}

fn bench_serving_throughput(c: &mut Criterion) {
    let model = fixture();

    // one conventional criterion row: a synchronous single-request round
    // trip through a coalescing server (the latency floor a lone,
    // unpipelined client pays, deadline included)
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("default", Arc::clone(&model));
    let server = Server::start(registry, server_config(true)).expect("server starts");
    let mut client = ServeClient::connect(server.addr()).expect("client connects");
    let archs = fixture_archs(SearchSpaceId::NasBench201, 64);
    let one: Vec<Architecture> = archs[..1].to_vec();
    let mut group = c.benchmark_group("serving_throughput");
    group.sample_size(10);
    group.bench_function("rtt_b1", |b| {
        b.iter(|| {
            client
                .predict_scores("default", Platform::EdgeGpu, &one)
                .expect("round trip")
        })
    });
    group.finish();
    drop(client);
    drop(server);

    // the scenario grid: (name, coalesce, clients, per-request batch,
    // rounds per client)
    let scenarios: [(&str, bool, usize, usize, usize); 4] = [
        ("coalesced_b1", true, 8, 1, 150),
        ("uncoalesced_b1", false, 8, 1, 150),
        ("client_b8", true, 4, 8, 60),
        ("client_b64", true, 2, 64, 30),
    ];
    for (name, coalesce, clients, batch, rounds) in scenarios {
        let result = run_scenario(&model, coalesce, clients, batch, rounds);
        record_metric(
            format!("serving_throughput/metrics/req_per_sec_{name}"),
            result.req_per_sec,
        );
        record_metric(
            format!("serving_throughput/metrics/p99_us_{name}"),
            result.p99_us,
        );
        println!(
            "serving_throughput/{name}: {:.0} req/s, p99 {:.0} us",
            result.req_per_sec, result.p99_us
        );
    }
}

criterion_group!(benches, bench_serving_throughput);
criterion_main!(benches);
