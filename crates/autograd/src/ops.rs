//! Forward op builders and their backward rules.
//!
//! Every builder takes its output storage from the tape's buffer pool and
//! every backward rule writes its deltas into pooled buffers, so a
//! reset-reuse training loop stays allocation-free in steady state. The
//! ranking/regression losses are fused: value and gradient are computed in
//! one forward pass and the gradient is stored on the op, which makes the
//! backward rule a single scale-and-accumulate.

use crate::error::AutogradError;
use crate::tape::{Op, Tape, Var};
use crate::Result;
use hwpr_tensor::{Matrix, ShapeError};

impl Tape {
    /// Matrix product `a @ b`.
    ///
    /// # Errors
    ///
    /// Returns a shape error when inner dimensions disagree.
    pub fn matmul(&mut self, a: Var, b: Var) -> Result<Var> {
        let m = self.nodes[a.0].value.rows();
        let n = self.nodes[b.0].value.cols();
        let mut value = self.pool.take(m, n);
        self.nodes[a.0]
            .value
            .matmul_into(&self.nodes[b.0].value, &mut value)?;
        Ok(self.push(value, Op::MatMul(a, b)))
    }

    /// Element-wise sum `a + b`.
    ///
    /// # Errors
    ///
    /// Returns a shape error when shapes differ.
    pub fn add(&mut self, a: Var, b: Var) -> Result<Var> {
        self.zip_op("add", a, b, |x, y| x + y, Op::Add(a, b))
    }

    /// Element-wise difference `a - b`.
    ///
    /// # Errors
    ///
    /// Returns a shape error when shapes differ.
    pub fn sub(&mut self, a: Var, b: Var) -> Result<Var> {
        self.zip_op("sub", a, b, |x, y| x - y, Op::Sub(a, b))
    }

    /// Element-wise product `a * b`.
    ///
    /// # Errors
    ///
    /// Returns a shape error when shapes differ.
    pub fn mul(&mut self, a: Var, b: Var) -> Result<Var> {
        self.zip_op("mul", a, b, |x, y| x * y, Op::Mul(a, b))
    }

    /// Pooled element-wise combination of two nodes.
    fn zip_op<F: Fn(f32, f32) -> f32>(
        &mut self,
        name: &'static str,
        a: Var,
        b: Var,
        f: F,
        op: Op,
    ) -> Result<Var> {
        if self.nodes[a.0].value.shape() != self.nodes[b.0].value.shape() {
            return Err(AutogradError::Shape(ShapeError::new(
                name,
                self.nodes[a.0].value.shape(),
                self.nodes[b.0].value.shape(),
            )));
        }
        let mut value = self.pool.take_copy(&self.nodes[a.0].value);
        value.zip_apply(&self.nodes[b.0].value, f);
        Ok(self.push(value, op))
    }

    /// Adds the `1 x cols` row vector `bias` to every row of `a`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `bias` is not `1 x a.cols()`.
    pub fn add_bias(&mut self, a: Var, bias: Var) -> Result<Var> {
        let shape = self.nodes[a.0].value.shape();
        let bshape = self.nodes[bias.0].value.shape();
        if bshape != (1, shape.1) {
            return Err(AutogradError::Shape(ShapeError::new(
                "add_bias", shape, bshape,
            )));
        }
        let mut value = self.pool.take_copy(&self.nodes[a.0].value);
        let b = &self.nodes[bias.0].value;
        for r in 0..shape.0 {
            for (v, &bv) in value.row_mut(r).iter_mut().zip(b.as_slice()) {
                *v += bv;
            }
        }
        Ok(self.push(value, Op::AddBias(a, bias)))
    }

    /// Scalar product `a * scalar`.
    pub fn scale(&mut self, a: Var, scalar: f32) -> Var {
        let mut value = self.pool.take_copy(&self.nodes[a.0].value);
        value.map_inplace(|x| x * scalar);
        self.push(value, Op::Scale(a, scalar))
    }

    /// Element-wise `a + scalar`.
    pub fn add_scalar(&mut self, a: Var, scalar: f32) -> Var {
        let mut value = self.pool.take_copy(&self.nodes[a.0].value);
        value.map_inplace(|x| x + scalar);
        self.push(value, Op::AddScalar(a, scalar))
    }

    /// Rectified linear unit `max(a, 0)`.
    pub fn relu(&mut self, a: Var) -> Var {
        let mut value = self.pool.take_copy(&self.nodes[a.0].value);
        value.map_inplace(|x| x.max(0.0));
        self.push(value, Op::Relu(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let mut value = self.pool.take_copy(&self.nodes[a.0].value);
        value.map_inplace(f32::tanh);
        self.push(value, Op::Tanh(a))
    }

    /// Logistic sigmoid `1 / (1 + exp(-a))`.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let mut value = self.pool.take_copy(&self.nodes[a.0].value);
        value.map_inplace(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(value, Op::Sigmoid(a))
    }

    /// Element-wise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let mut value = self.pool.take_copy(&self.nodes[a.0].value);
        value.map_inplace(f32::exp);
        self.push(value, Op::Exp(a))
    }

    /// Element-wise `sqrt(a + eps)`; `eps` keeps the derivative finite at 0.
    pub fn sqrt(&mut self, a: Var, eps: f32) -> Var {
        let mut value = self.pool.take_copy(&self.nodes[a.0].value);
        value.map_inplace(|x| (x + eps).sqrt());
        self.push(value, Op::Sqrt(a, eps))
    }

    /// Horizontal concatenation of `parts` (equal row counts).
    ///
    /// # Errors
    ///
    /// Returns a shape error if `parts` is empty or row counts differ.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Result<Var> {
        let first = parts
            .first()
            .ok_or_else(|| AutogradError::Shape(ShapeError::new("concat_cols", (0, 0), (0, 0))))?;
        let rows = self.nodes[first.0].value.rows();
        let mut total = 0;
        for &p in parts {
            let shape = self.nodes[p.0].value.shape();
            if shape.0 != rows {
                return Err(AutogradError::Shape(ShapeError::new(
                    "concat_cols",
                    (rows, total),
                    shape,
                )));
            }
            total += shape.1;
        }
        let mut value = self.pool.take(rows, total);
        for r in 0..rows {
            let mut offset = 0;
            for &p in parts {
                let src = &self.nodes[p.0].value;
                value.row_mut(r)[offset..offset + src.cols()].copy_from_slice(src.row(r));
                offset += src.cols();
            }
        }
        let mut vars = self.take_vars();
        vars.extend_from_slice(parts);
        Ok(self.push(value, Op::ConcatCols(vars)))
    }

    /// Vertical concatenation of `parts` (equal column counts). Used by the
    /// fused LSTM step to stack `W_ih` on top of `W_hh` once per layer.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `parts` is empty or column counts differ.
    pub fn concat_rows(&mut self, parts: &[Var]) -> Result<Var> {
        let first = parts
            .first()
            .ok_or_else(|| AutogradError::Shape(ShapeError::new("concat_rows", (0, 0), (0, 0))))?;
        let cols = self.nodes[first.0].value.cols();
        let mut total = 0;
        for &p in parts {
            let shape = self.nodes[p.0].value.shape();
            if shape.1 != cols {
                return Err(AutogradError::Shape(ShapeError::new(
                    "concat_rows",
                    (total, cols),
                    shape,
                )));
            }
            total += shape.0;
        }
        let mut value = self.pool.take(total, cols);
        let mut offset = 0;
        for &p in parts {
            let src = &self.nodes[p.0].value;
            value.as_mut_slice()[offset..offset + src.len()].copy_from_slice(src.as_slice());
            offset += src.len();
        }
        let mut vars = self.take_vars();
        vars.extend_from_slice(parts);
        Ok(self.push(value, Op::ConcatRows(vars)))
    }

    /// Columns `start..end` of `a` as a new node.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the range is out of bounds or empty.
    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Result<Var> {
        let (rows, cols) = self.nodes[a.0].value.shape();
        if start >= end || end > cols {
            return Err(AutogradError::Shape(ShapeError::new(
                "slice_cols",
                (rows, cols),
                (start, end),
            )));
        }
        let mut value = self.pool.take(rows, end - start);
        let src = &self.nodes[a.0].value;
        for r in 0..rows {
            value.row_mut(r).copy_from_slice(&src.row(r)[start..end]);
        }
        Ok(self.push(value, Op::SliceCols(a, start, end)))
    }

    /// Gathers rows of `a` by index (embedding lookup); duplicate indices
    /// are allowed and their gradients accumulate.
    ///
    /// # Errors
    ///
    /// Returns [`AutogradError::IndexOutOfRange`] for invalid indices.
    pub fn gather_rows(&mut self, a: Var, indices: &[usize]) -> Result<Var> {
        let rows = self.nodes[a.0].value.rows();
        if let Some(&bad) = indices.iter().find(|&&i| i >= rows) {
            return Err(AutogradError::IndexOutOfRange { index: bad, rows });
        }
        let cols = self.nodes[a.0].value.cols();
        let mut value = self.pool.take(indices.len(), cols);
        let src = &self.nodes[a.0].value;
        for (out_row, &src_row) in indices.iter().enumerate() {
            value.row_mut(out_row).copy_from_slice(src.row(src_row));
        }
        let mut idx = self.take_idx();
        idx.extend_from_slice(indices);
        Ok(self.push(value, Op::GatherRows(a, idx)))
    }

    /// Per-sample constant graph convolution: interprets `x` as
    /// `adjacency.len()` stacked blocks of `n` rows and left-multiplies
    /// block `b` by `adjacency[b]`. The adjacencies are constants (they are
    /// derived from the architecture, not learned), so only `x` receives
    /// gradients.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the block structure is inconsistent.
    pub fn block_graph_matmul(&mut self, x: Var, adjacency: Vec<Matrix>, n: usize) -> Result<Var> {
        let value = self.nodes[x.0].value.block_left_matmul(&adjacency, n)?;
        Ok(self.push(value, Op::BlockGraphMatmul(x, adjacency, n)))
    }

    /// Element-wise product with a fixed dropout `mask` (entries are `0` or
    /// `1/(1-p)`; the caller generates the mask so the tape stays
    /// deterministic). Build the mask with [`Tape::alloc`] so its storage
    /// is recycled on [`Tape::reset`].
    ///
    /// # Errors
    ///
    /// Returns a shape error when the mask shape differs from `a`.
    pub fn dropout(&mut self, a: Var, mask: Matrix) -> Result<Var> {
        if self.nodes[a.0].value.shape() != mask.shape() {
            return Err(AutogradError::Shape(ShapeError::new(
                "dropout",
                self.nodes[a.0].value.shape(),
                mask.shape(),
            )));
        }
        let mut value = self.pool.take_copy(&self.nodes[a.0].value);
        value.zip_apply(&mask, |x, m| x * m);
        Ok(self.push(value, Op::Dropout(a, mask)))
    }

    /// Mean over all elements of `a`, producing a `1 x 1` node.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let mean = self.nodes[a.0].value.mean();
        let mut value = self.pool.take(1, 1);
        value.as_mut_slice()[0] = mean;
        self.push(value, Op::MeanAll(a))
    }

    /// Sum over all elements of `a`, producing a `1 x 1` node.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let sum = self.nodes[a.0].value.sum();
        let mut value = self.pool.take(1, 1);
        value.as_mut_slice()[0] = sum;
        self.push(value, Op::SumAll(a))
    }

    /// Mean squared error between `pred` and the constant `target`.
    ///
    /// Fused: the gradient `2 (pred - target) / n` is computed alongside
    /// the value and stored on the op.
    ///
    /// # Errors
    ///
    /// Returns a shape error when shapes differ.
    pub fn mse_loss(&mut self, pred: Var, target: &Matrix) -> Result<Var> {
        let shape = self.nodes[pred.0].value.shape();
        if shape != target.shape() {
            return Err(AutogradError::Shape(ShapeError::new(
                "mse_loss",
                shape,
                target.shape(),
            )));
        }
        let mut g = self.pool.take(shape.0, shape.1);
        let mut value = self.pool.take(1, 1);
        let src = &self.nodes[pred.0].value;
        let inv_n = 1.0 / src.len().max(1) as f32;
        let mut loss = 0.0;
        for ((gv, &p), &t) in g
            .as_mut_slice()
            .iter_mut()
            .zip(src.as_slice())
            .zip(target.as_slice())
        {
            let d = p - t;
            loss += d * d * inv_n;
            *gv = 2.0 * d * inv_n;
        }
        value.as_mut_slice()[0] = loss;
        Ok(self.push(value, Op::MseLoss(pred, g)))
    }

    /// ListMLE listwise ranking loss (Eq. 4 of the paper).
    ///
    /// `scores` must be an `n x 1` column of model scores and `order` a
    /// permutation of `0..n` listing rows from most-dominant to
    /// least-dominant. The loss is
    /// `Σ_i [-s_{π(i)} + log Σ_{j≥i} exp(s_{π(j)})]`, computed with
    /// suffix log-sum-exp stabilisation.
    ///
    /// Fused: the gradient is produced in the same pass via a running
    /// prefix of `exp(logZ_k - logZ_i)` terms (each `≤ 1`, so the pass is
    /// as stable as the quadratic reference), making the whole loss `O(n)`
    /// instead of the reference `O(n²)` backward.
    ///
    /// # Errors
    ///
    /// Returns [`AutogradError::InvalidRanking`] if `order` is not a
    /// permutation of the score rows, or a shape error if `scores` is not a
    /// column vector.
    pub fn list_mle(&mut self, scores: Var, order: &[usize]) -> Result<Var> {
        let (n, cols) = self.nodes[scores.0].value.shape();
        if cols != 1 {
            return Err(AutogradError::Shape(ShapeError::new(
                "list_mle",
                (n, cols),
                (n, 1),
            )));
        }
        self.validate_permutation(order, n)?;
        let mut log_z = self.pool.take_raw(n);
        log_z.clear();
        log_z.resize(n, 0.0);
        let mut g = self.pool.take(n, 1);
        let mut value = self.pool.take(1, 1);
        {
            let s = self.nodes[scores.0].value.as_slice();
            // suffix log-sum-exp, streamed from the tail
            let mut max = f32::NEG_INFINITY;
            let mut sum = 0.0f32;
            for i in (0..n).rev() {
                let sv = s[order[i]];
                if sv > max {
                    sum = sum * (max - sv).exp() + 1.0;
                    max = sv;
                } else {
                    sum += (sv - max).exp();
                }
                log_z[i] = max + sum.ln();
            }
            // loss and gradient in one forward sweep:
            //   dL/ds_{π(k)} = exp(s_{π(k)} - logZ_k) · sm_k - 1
            // with sm_k = Σ_{i≤k} exp(logZ_k - logZ_i), maintained by the
            // recurrence sm_k = 1 + sm_{k-1} · exp(logZ_k - logZ_{k-1})
            // (logZ is non-increasing, so every factor is ≤ 1).
            let mut loss = 0.0f32;
            let mut sm = 0.0f32;
            let mut prev_log_z = 0.0f32;
            for (k, &idx) in order.iter().enumerate() {
                let lz = log_z[k];
                loss += lz - s[idx];
                sm = if k == 0 {
                    1.0
                } else {
                    1.0 + sm * (lz - prev_log_z).exp()
                };
                prev_log_z = lz;
                g.as_mut_slice()[idx] = (s[idx] - lz).exp() * sm - 1.0;
            }
            value.as_mut_slice()[0] = loss;
        }
        self.pool.put_raw(log_z);
        Ok(self.push(value, Op::ListMle(scores, g)))
    }

    /// Pairwise hinge ranking loss with a margin (GATES-style).
    ///
    /// For each `(hi, lo)` pair the model should score row `hi` at least
    /// `margin` above row `lo`; violations contribute
    /// `margin - (s_hi - s_lo)` and the loss is the mean over pairs.
    ///
    /// Fused: the subgradient is accumulated in the same pass as the value.
    ///
    /// # Errors
    ///
    /// Returns [`AutogradError::InvalidRanking`] when `pairs` is empty or
    /// holds out-of-range indices, or a shape error if `scores` is not a
    /// column vector.
    pub fn pairwise_hinge(
        &mut self,
        scores: Var,
        pairs: &[(usize, usize)],
        margin: f32,
    ) -> Result<Var> {
        let (n, cols) = self.nodes[scores.0].value.shape();
        if cols != 1 {
            return Err(AutogradError::Shape(ShapeError::new(
                "pairwise_hinge",
                (n, cols),
                (n, 1),
            )));
        }
        if pairs.is_empty() {
            return Err(AutogradError::InvalidRanking("empty pair list".into()));
        }
        if let Some(&(a, b)) = pairs.iter().find(|&&(a, b)| a >= n || b >= n) {
            return Err(AutogradError::InvalidRanking(format!(
                "pair ({a}, {b}) out of range for {n} scores"
            )));
        }
        let mut g = self.pool.take(n, 1);
        let mut value = self.pool.take(1, 1);
        {
            let s = self.nodes[scores.0].value.as_slice();
            let w = 1.0 / pairs.len() as f32;
            let mut loss = 0.0f32;
            let gs = g.as_mut_slice();
            for &(hi, lo) in pairs {
                let violation = margin - (s[hi] - s[lo]);
                if violation > 0.0 {
                    loss += violation * w;
                    gs[hi] -= w;
                    gs[lo] += w;
                }
            }
            value.as_mut_slice()[0] = loss;
        }
        Ok(self.push(value, Op::PairwiseHinge(scores, g)))
    }

    fn validate_permutation(&mut self, order: &[usize], n: usize) -> Result<()> {
        if order.len() != n {
            return Err(AutogradError::InvalidRanking(format!(
                "order has {} entries for {} scores",
                order.len(),
                n
            )));
        }
        self.mark_scratch.clear();
        self.mark_scratch.resize(n, false);
        for &i in order {
            if i >= n || self.mark_scratch[i] {
                return Err(AutogradError::InvalidRanking(format!(
                    "order is not a permutation (offending index {i})"
                )));
            }
            self.mark_scratch[i] = true;
        }
        Ok(())
    }

    pub(crate) fn backprop_node(&mut self, i: usize) -> Result<()> {
        // Move the gradient and op out of the node (restored below) so the
        // backward rules can borrow the tape freely without cloning either.
        let grad = self.nodes[i]
            .grad
            .take()
            .expect("backprop_node called on node without gradient");
        let op = std::mem::replace(&mut self.nodes[i].op, Op::Leaf);
        let result = self.backprop_op(i, &op, &grad);
        self.nodes[i].op = op;
        self.nodes[i].grad = Some(grad);
        result
    }

    fn backprop_op(&mut self, i: usize, op: &Op, grad: &Matrix) -> Result<()> {
        match op {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                let (a, b) = (*a, *b);
                let (m, n) = grad.shape();
                let k = self.nodes[a.0].value.cols();
                let mut da = self.pool.take(m, k);
                grad.matmul_nt_into(&self.nodes[b.0].value, &mut da)?;
                let mut db = self.pool.take(k, n);
                self.nodes[a.0].value.matmul_tn_into(grad, &mut db)?;
                self.accumulate(a, da);
                self.accumulate(b, db);
            }
            Op::Add(a, b) => {
                self.accumulate_copy(*a, grad);
                self.accumulate_copy(*b, grad);
            }
            Op::Sub(a, b) => {
                self.accumulate_copy(*a, grad);
                let mut db = self.pool.take_copy(grad);
                db.map_inplace(|x| -x);
                self.accumulate(*b, db);
            }
            Op::Mul(a, b) => {
                let mut da = self.pool.take_copy(grad);
                da.zip_apply(&self.nodes[b.0].value, |g, y| g * y);
                let mut db = self.pool.take_copy(grad);
                db.zip_apply(&self.nodes[a.0].value, |g, x| g * x);
                self.accumulate(*a, da);
                self.accumulate(*b, db);
            }
            Op::AddBias(a, bias) => {
                self.accumulate_copy(*a, grad);
                let mut db = self.pool.take(1, grad.cols());
                grad.sum_rows_into(&mut db);
                self.accumulate(*bias, db);
            }
            Op::Scale(a, s) => {
                let s = *s;
                let mut da = self.pool.take_copy(grad);
                da.map_inplace(|x| x * s);
                self.accumulate(*a, da);
            }
            Op::AddScalar(a, _) => {
                self.accumulate_copy(*a, grad);
            }
            Op::Relu(a) => {
                let mut da = self.pool.take_copy(grad);
                da.zip_apply(&self.nodes[a.0].value, |g, x| if x > 0.0 { g } else { 0.0 });
                self.accumulate(*a, da);
            }
            Op::Tanh(a) => {
                let mut da = self.pool.take_copy(grad);
                da.zip_apply(&self.nodes[i].value, |g, y| g * (1.0 - y * y));
                self.accumulate(*a, da);
            }
            Op::Sigmoid(a) => {
                let mut da = self.pool.take_copy(grad);
                da.zip_apply(&self.nodes[i].value, |g, y| g * y * (1.0 - y));
                self.accumulate(*a, da);
            }
            Op::Exp(a) => {
                let mut da = self.pool.take_copy(grad);
                da.zip_apply(&self.nodes[i].value, |g, y| g * y);
                self.accumulate(*a, da);
            }
            Op::Sqrt(a, _) => {
                let mut da = self.pool.take_copy(grad);
                da.zip_apply(&self.nodes[i].value, |g, y| g * 0.5 / y.max(1e-12));
                self.accumulate(*a, da);
            }
            Op::ConcatCols(parts) => {
                let mut offset = 0;
                let rows = grad.rows();
                for &p in parts {
                    let w = self.nodes[p.0].value.cols();
                    let mut dp = self.pool.take(rows, w);
                    for r in 0..rows {
                        dp.row_mut(r)
                            .copy_from_slice(&grad.row(r)[offset..offset + w]);
                    }
                    self.accumulate(p, dp);
                    offset += w;
                }
            }
            Op::ConcatRows(parts) => {
                let mut offset = 0;
                for &p in parts {
                    let (rows, cols) = self.nodes[p.0].value.shape();
                    let mut dp = self.pool.take(rows, cols);
                    let len = rows * cols;
                    dp.as_mut_slice()
                        .copy_from_slice(&grad.as_slice()[offset..offset + len]);
                    self.accumulate(p, dp);
                    offset += len;
                }
            }
            Op::SliceCols(a, start, end) => {
                let (start, end) = (*start, *end);
                let (rows, cols) = self.nodes[a.0].value.shape();
                let mut da = self.pool.take(rows, cols);
                for r in 0..grad.rows() {
                    da.row_mut(r)[start..end].copy_from_slice(grad.row(r));
                }
                self.accumulate(*a, da);
            }
            Op::GatherRows(a, indices) => {
                let (rows, cols) = self.nodes[a.0].value.shape();
                let mut da = self.pool.take(rows, cols);
                for (out_row, &src_row) in indices.iter().enumerate() {
                    for (dst, &g) in da.row_mut(src_row).iter_mut().zip(grad.row(out_row)) {
                        *dst += g;
                    }
                }
                self.accumulate(*a, da);
            }
            Op::BlockGraphMatmul(x, adjacency, n) => {
                let n = *n;
                let cols = grad.cols();
                let mut dx = self.pool.take(grad.rows(), cols);
                let mut block = self.pool.take(n, cols);
                let mut prod = self.pool.take(n, cols);
                for (b, adj) in adjacency.iter().enumerate() {
                    for r in 0..n {
                        block.row_mut(r).copy_from_slice(grad.row(b * n + r));
                    }
                    // d(adj @ x_b) / dx_b pulls the gradient through adj^T
                    adj.matmul_tn_into(&block, &mut prod)?;
                    for r in 0..n {
                        dx.row_mut(b * n + r).copy_from_slice(prod.row(r));
                    }
                }
                self.pool.put(block);
                self.pool.put(prod);
                self.accumulate(*x, dx);
            }
            Op::Dropout(a, mask) => {
                let mut da = self.pool.take_copy(grad);
                da.zip_apply(mask, |g, m| g * m);
                self.accumulate(*a, da);
            }
            Op::MeanAll(a) => {
                let (rows, cols) = self.nodes[a.0].value.shape();
                let g = grad[(0, 0)] / (rows * cols).max(1) as f32;
                let mut da = self.pool.take(rows, cols);
                da.as_mut_slice().fill(g);
                self.accumulate(*a, da);
            }
            Op::SumAll(a) => {
                let (rows, cols) = self.nodes[a.0].value.shape();
                let mut da = self.pool.take(rows, cols);
                da.as_mut_slice().fill(grad[(0, 0)]);
                self.accumulate(*a, da);
            }
            Op::LinearAct { x, w, bias, act } => {
                self.backprop_linear_act(i, *x, *w, *bias, *act, grad)?;
            }
            Op::LstmStep {
                x,
                hc,
                w,
                bias,
                xh,
                gates,
            } => {
                self.backprop_lstm_step(i, *x, *hc, *w, *bias, xh, gates, grad)?;
            }
            Op::MseLoss(pred, g0) => {
                let mut da = self.pool.take_copy(g0);
                let scale = grad[(0, 0)];
                da.map_inplace(|x| x * scale);
                self.accumulate(*pred, da);
            }
            Op::ListMle(scores, g0) | Op::PairwiseHinge(scores, g0) => {
                let mut da = self.pool.take_copy(g0);
                let scale = grad[(0, 0)];
                da.map_inplace(|x| x * scale);
                self.accumulate(*scores, da);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
pub(crate) mod reference_loss {
    //! Naive O(n²) ListMLE kept as ground truth for the fused kernel.

    /// Forward ListMLE loss with suffix log-sum-exp stabilisation.
    pub(crate) fn list_mle_forward(scores: &[f32], order: &[usize]) -> f32 {
        let log_z = suffix_log_sum_exp(scores, order);
        order
            .iter()
            .enumerate()
            .map(|(i, &idx)| log_z[i] - scores[idx])
            .sum()
    }

    /// Gradient of the ListMLE loss with respect to each score.
    pub(crate) fn list_mle_backward(scores: &[f32], order: &[usize]) -> Vec<f32> {
        let log_z = suffix_log_sum_exp(scores, order);
        let mut grad = vec![0.0f32; scores.len()];
        // dL/ds_{π(k)} = -1 + Σ_{i≤k} exp(s_{π(k)} - logZ_i)
        for (k, &idx) in order.iter().enumerate() {
            let mut acc = 0.0;
            for lz in log_z.iter().take(k + 1) {
                acc += (scores[idx] - lz).exp();
            }
            grad[idx] = -1.0 + acc;
        }
        grad
    }

    /// `log Σ_{j≥i} exp(s_{π(j)})` for every suffix start `i`.
    pub(crate) fn suffix_log_sum_exp(scores: &[f32], order: &[usize]) -> Vec<f32> {
        let n = order.len();
        let mut out = vec![0.0f32; n];
        // running (max, sum of exp(s - max)) maintained from the tail
        let mut max = f32::NEG_INFINITY;
        let mut sum = 0.0f32;
        for i in (0..n).rev() {
            let s = scores[order[i]];
            if s > max {
                sum = sum * (max - s).exp() + 1.0;
                max = s;
            } else {
                sum += (s - max).exp();
            }
            out[i] = max + sum.ln();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::reference_loss::*;
    use super::*;
    use crate::check::finite_difference_check;

    #[test]
    fn matmul_gradients() {
        finite_difference_check(&[(2, 3), (3, 2)], |tape, vars| {
            let y = tape.matmul(vars[0], vars[1])?;
            Ok(tape.mean_all(y))
        });
    }

    #[test]
    fn add_sub_mul_gradients() {
        finite_difference_check(&[(2, 2), (2, 2)], |tape, vars| {
            let s = tape.add(vars[0], vars[1])?;
            let d = tape.sub(s, vars[1])?;
            let m = tape.mul(d, vars[0])?;
            Ok(tape.mean_all(m))
        });
    }

    #[test]
    fn bias_and_scale_gradients() {
        finite_difference_check(&[(3, 4), (1, 4)], |tape, vars| {
            let b = tape.add_bias(vars[0], vars[1])?;
            let s = tape.scale(b, 0.5);
            let t = tape.add_scalar(s, 1.0);
            Ok(tape.mean_all(t))
        });
    }

    #[test]
    fn nonlinearity_gradients() {
        finite_difference_check(&[(2, 3)], |tape, vars| {
            let t = tape.tanh(vars[0]);
            let s = tape.sigmoid(t);
            let e = tape.exp(s);
            let q = tape.sqrt(e, 1e-6);
            Ok(tape.mean_all(q))
        });
    }

    #[test]
    fn relu_gradient_away_from_kink() {
        // offset inputs so no element sits exactly at the ReLU kink
        finite_difference_check(&[(2, 3)], |tape, vars| {
            let shifted = tape.add_scalar(vars[0], 0.37);
            let r = tape.relu(shifted);
            Ok(tape.mean_all(r))
        });
    }

    #[test]
    fn concat_and_slice_gradients() {
        finite_difference_check(&[(2, 2), (2, 3)], |tape, vars| {
            let c = tape.concat_cols(&[vars[0], vars[1]])?;
            let s = tape.slice_cols(c, 1, 4)?;
            Ok(tape.mean_all(s))
        });
    }

    #[test]
    fn concat_rows_gradients() {
        finite_difference_check(&[(2, 3), (4, 3)], |tape, vars| {
            let c = tape.concat_rows(&[vars[0], vars[1]])?;
            Ok(tape.mean_all(c))
        });
    }

    #[test]
    fn concat_rows_value_matches_tensor_concat() {
        let mut tape = Tape::new();
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0]]);
        let va = tape.leaf(a.clone());
        let vb = tape.leaf(b.clone());
        let c = tape.concat_rows(&[va, vb]).unwrap();
        assert_eq!(tape.value(c), &Matrix::concat_rows(&[&a, &b]).unwrap());
        assert!(tape.concat_rows(&[]).is_err());
    }

    #[test]
    fn gather_rows_gradients_accumulate_duplicates() {
        finite_difference_check(&[(4, 3)], |tape, vars| {
            let g = tape.gather_rows(vars[0], &[0, 2, 2, 3])?;
            Ok(tape.mean_all(g))
        });
    }

    #[test]
    fn block_graph_matmul_gradients() {
        let adj0 = Matrix::from_rows(&[&[0.5, 1.0], &[0.0, 0.5]]);
        let adj1 = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0]]);
        finite_difference_check(&[(4, 3)], move |tape, vars| {
            let y = tape.block_graph_matmul(vars[0], vec![adj0.clone(), adj1.clone()], 2)?;
            Ok(tape.mean_all(y))
        });
    }

    #[test]
    fn dropout_gradient_uses_mask() {
        let mask = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 2.0]]);
        finite_difference_check(&[(2, 2)], move |tape, vars| {
            let d = tape.dropout(vars[0], mask.clone())?;
            Ok(tape.mean_all(d))
        });
    }

    #[test]
    fn sum_and_mse_gradients() {
        let target = Matrix::from_rows(&[&[0.3, -0.2], &[0.1, 0.9]]);
        finite_difference_check(&[(2, 2)], move |tape, vars| {
            let l = tape.mse_loss(vars[0], &target)?;
            Ok(l)
        });
        finite_difference_check(&[(2, 2)], |tape, vars| Ok(tape.sum_all(vars[0])));
    }

    #[test]
    fn list_mle_gradients() {
        finite_difference_check(&[(5, 1)], |tape, vars| {
            tape.list_mle(vars[0], &[3, 1, 4, 0, 2])
        });
    }

    #[test]
    fn list_mle_batch_of_one() {
        // n = 1 degenerate list: loss is exactly 0 and so is the gradient
        let mut tape = Tape::new();
        let s = tape.leaf(Matrix::col_vector(&[0.7]));
        let l = tape.list_mle(s, &[0]).unwrap();
        assert!(tape.value(l)[(0, 0)].abs() < 1e-6);
        tape.backward(l).unwrap();
        assert!(tape.grad(s).unwrap()[(0, 0)].abs() < 1e-6);
    }

    #[test]
    fn fused_list_mle_matches_quadratic_reference() {
        // the fused O(n) forward+gradient must agree with the O(n²)
        // reference on value and gradient for assorted sizes
        for n in [1usize, 2, 3, 8, 33] {
            let scores: Vec<f32> = (0..n)
                .map(|i| ((i * 37 % 19) as f32 - 9.0) * 0.37)
                .collect();
            let order: Vec<usize> = {
                let mut o: Vec<usize> = (0..n).collect();
                o.reverse();
                if n > 2 {
                    o.swap(0, n / 2);
                }
                o
            };
            let ref_loss = list_mle_forward(&scores, &order);
            let ref_grad = list_mle_backward(&scores, &order);
            let mut tape = Tape::new();
            let s = tape.leaf(Matrix::col_vector(&scores));
            let l = tape.list_mle(s, &order).unwrap();
            assert!(
                (tape.value(l)[(0, 0)] - ref_loss).abs() < 1e-4 * (1.0 + ref_loss.abs()),
                "loss mismatch at n={n}"
            );
            tape.backward(l).unwrap();
            let fused_grad = tape.grad(s).unwrap();
            for (j, (&f, &r)) in fused_grad.as_slice().iter().zip(&ref_grad).enumerate() {
                assert!(
                    (f - r).abs() < 1e-4,
                    "grad mismatch at n={n} elem {j}: fused {f}, reference {r}"
                );
            }
        }
    }

    #[test]
    fn pairwise_hinge_gradients() {
        // margin large enough that all pairs are active (nonsmooth boundary avoided)
        finite_difference_check(&[(4, 1)], |tape, vars| {
            tape.pairwise_hinge(vars[0], &[(0, 1), (1, 2), (0, 3)], 10.0)
        });
    }

    #[test]
    fn list_mle_perfect_order_is_low() {
        // scores already sorted best-first: loss should be lower than reversed
        let mut tape = Tape::new();
        let good = tape.leaf(Matrix::col_vector(&[3.0, 2.0, 1.0, 0.0]));
        let l_good = tape.list_mle(good, &[0, 1, 2, 3]).unwrap();
        let l_bad = tape.list_mle(good, &[3, 2, 1, 0]).unwrap();
        assert!(tape.value(l_good)[(0, 0)] < tape.value(l_bad)[(0, 0)]);
    }

    #[test]
    fn list_mle_rejects_bad_permutation() {
        let mut tape = Tape::new();
        let s = tape.leaf(Matrix::col_vector(&[1.0, 2.0]));
        assert!(tape.list_mle(s, &[0, 0]).is_err());
        assert!(tape.list_mle(s, &[0]).is_err());
        assert!(tape.list_mle(s, &[0, 2]).is_err());
    }

    #[test]
    fn pairwise_hinge_rejects_bad_pairs() {
        let mut tape = Tape::new();
        let s = tape.leaf(Matrix::col_vector(&[1.0, 2.0]));
        assert!(tape.pairwise_hinge(s, &[], 0.1).is_err());
        assert!(tape.pairwise_hinge(s, &[(0, 5)], 0.1).is_err());
    }

    #[test]
    fn hinge_zero_when_margin_satisfied() {
        let mut tape = Tape::new();
        let s = tape.leaf(Matrix::col_vector(&[5.0, 0.0]));
        let l = tape.pairwise_hinge(s, &[(0, 1)], 0.1).unwrap();
        assert_eq!(tape.value(l)[(0, 0)], 0.0);
    }

    #[test]
    fn suffix_lse_matches_naive() {
        let scores = [0.3f32, -1.2, 2.5, 0.0];
        let order = [2usize, 0, 3, 1];
        let fast = suffix_log_sum_exp(&scores, &order);
        for i in 0..order.len() {
            let naive: f32 = order[i..].iter().map(|&j| scores[j].exp()).sum();
            assert!((fast[i] - naive.ln()).abs() < 1e-5, "suffix {i}");
        }
    }

    #[test]
    fn gradients_accumulate_across_reuse() {
        // y = x + x means dy/dx = 2
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::filled(1, 1, 3.0));
        let y = tape.add(x, x).unwrap();
        tape.backward(y).unwrap();
        assert_eq!(tape.grad(x).unwrap()[(0, 0)], 2.0);
    }
}
