//! [`IncrementalHv2`]: a persistent 2-D Pareto archive with O(Δ log N)
//! hypervolume maintenance.
//!
//! Search telemetry records the front hypervolume every MOEA generation.
//! Recomputing it from scratch is a full validate + non-dominated sort +
//! sweep over the population; between consecutive generations the front
//! barely moves, so this structure keeps the non-dominated staircase
//! sorted by the first objective and folds each new point in with a
//! binary search, a contiguous dominated-run removal, and a local update
//! of the staircase sum
//!
//! ```text
//!     hv = Σᵢ (rx − xᵢ)(yᵢ₋₁ − yᵢ)      with y₋₁ = ry
//! ```
//!
//! (minimization; `(rx, ry)` is the reference point, points sorted by x
//! ascending so y is strictly descending along the front).
//!
//! The accumulated sum can drift by a few ulps from the batch sweep after
//! many updates; [`IncrementalHv2::recompute`] restores the exact value
//! in O(N) without allocating, and [`IncrementalHv2::reset_from`] rebuilds
//! the archive from a fresh point set (the telemetry fallback when the
//! population front diverges from the archive).

use crate::{MooError, Result};
use std::borrow::Borrow;

/// Incrementally maintained 2-D hypervolume archive (see the [module
/// docs](self)).
///
/// # Examples
///
/// ```
/// use hwpr_moo::IncrementalHv2;
///
/// let mut hv = IncrementalHv2::new(&[4.0, 4.0]).unwrap();
/// hv.insert(1.0, 3.0).unwrap();
/// hv.insert(3.0, 1.0).unwrap();
/// hv.insert(2.0, 2.0).unwrap();
/// assert!((hv.hypervolume() - 6.0).abs() < 1e-12);
/// assert!(!hv.insert(2.5, 2.5).unwrap()); // dominated: front unchanged
/// assert_eq!(hv.front_len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalHv2 {
    reference: [f64; 2],
    /// Non-dominated staircase: x strictly ascending, y strictly
    /// descending.
    front: Vec<(f64, f64)>,
    hv: f64,
    inserts: u64,
    accepted: u64,
    resets: u64,
}

impl IncrementalHv2 {
    /// Creates an empty archive bounded by `reference` (both coordinates
    /// must be finite; inserted points must lie weakly inside the box).
    ///
    /// # Errors
    ///
    /// Returns [`MooError`] if `reference` is not a finite 2-D point.
    pub fn new(reference: &[f64]) -> Result<Self> {
        if reference.len() != 2 {
            return Err(MooError::DimensionMismatch {
                expected: 2,
                found: reference.len(),
            });
        }
        if reference.iter().any(|v| !v.is_finite()) {
            return Err(MooError::NonFinite);
        }
        Ok(Self {
            reference: [reference[0], reference[1]],
            front: Vec::new(),
            hv: 0.0,
            inserts: 0,
            accepted: 0,
            resets: 0,
        })
    }

    /// The reference point.
    pub fn reference(&self) -> [f64; 2] {
        self.reference
    }

    /// Folds `(x, y)` into the archive; returns `true` when the front
    /// changed (the point was not weakly dominated). O(Δ log N): a binary
    /// search plus removal of the contiguous run of newly dominated
    /// points.
    ///
    /// # Errors
    ///
    /// Returns [`MooError::NonFinite`] for non-finite coordinates and
    /// [`MooError::ReferenceNotDominating`] for points outside the
    /// reference box.
    pub fn insert(&mut self, x: f64, y: f64) -> Result<bool> {
        if !x.is_finite() || !y.is_finite() {
            return Err(MooError::NonFinite);
        }
        if x > self.reference[0] || y > self.reference[1] {
            return Err(MooError::ReferenceNotDominating);
        }
        self.inserts += 1;
        // first slot with front x >= x: everything before has smaller x
        let pos = self.front.partition_point(|p| p.0 < x);
        // weakly dominated by the best predecessor (smallest y with x' < x)…
        if pos > 0 && self.front[pos - 1].1 <= y {
            return Ok(false);
        }
        // …or by/equal to the (unique) front point sharing this x
        if pos < self.front.len() && self.front[pos].0 == x && self.front[pos].1 <= y {
            return Ok(false);
        }
        self.accepted += 1;
        let (rx, ry) = (self.reference[0], self.reference[1]);
        let y_left = if pos > 0 { self.front[pos - 1].1 } else { ry };
        // newly dominated points (x' >= x and y' >= y) are the contiguous
        // run after `pos`, since y descends along the staircase
        let mut end = pos;
        let mut removed = 0.0;
        let mut y_prev = y_left;
        while end < self.front.len() && self.front[end].1 >= y {
            let (px, py) = self.front[end];
            removed += (rx - px) * (y_prev - py);
            y_prev = py;
            end += 1;
        }
        // the slot after the run sees its upper edge move from y_prev to y
        let mut delta = (rx - x) * (y_left - y) - removed;
        if end < self.front.len() {
            let (nx, ny) = self.front[end];
            delta += (rx - nx) * (y - y_prev);
            debug_assert!(ny < y, "staircase must stay strictly descending");
        }
        self.hv += delta;
        if end > pos {
            self.front[pos] = (x, y);
            self.front.drain(pos + 1..end);
        } else {
            self.front.insert(pos, (x, y));
        }
        Ok(true)
    }

    /// True iff `(x, y)` is exactly one of the archive's front points.
    pub fn contains(&self, x: f64, y: f64) -> bool {
        let pos = self.front.partition_point(|p| p.0 < x);
        pos < self.front.len() && self.front[pos].0 == x && self.front[pos].1 == y
    }

    /// The maintained hypervolume of the archived front.
    pub fn hypervolume(&self) -> f64 {
        self.hv
    }

    /// Number of points on the archived front.
    pub fn front_len(&self) -> usize {
        self.front.len()
    }

    /// The archived front, x ascending / y descending.
    pub fn front(&self) -> &[(f64, f64)] {
        &self.front
    }

    /// Recomputes the hypervolume with a full staircase sweep (no
    /// allocation), replacing the incrementally accumulated value — the
    /// summation order matches the batch 2-D sweep, so the result is
    /// exactly what [`crate::hypervolume`] returns for this front.
    pub fn recompute(&mut self) -> f64 {
        let (rx, ry) = (self.reference[0], self.reference[1]);
        let mut hv = 0.0;
        let mut y_prev = ry;
        for &(x, y) in &self.front {
            hv += (rx - x) * (y_prev - y);
            y_prev = y;
        }
        self.hv = hv;
        hv
    }

    /// Drops the archived front (the reference point and buffers are
    /// kept, so warm rebuilds do not allocate).
    pub fn clear(&mut self) {
        self.front.clear();
        self.hv = 0.0;
    }

    /// Rebuilds the archive from `points` (each a 2-D objective vector)
    /// and returns the exact hypervolume. This is the divergence
    /// fallback: counters keep counting across resets, and retained
    /// capacity makes warm resets allocation-free for fronts no larger
    /// than previously seen.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::insert`]; the archive is cleared even
    /// when a point is rejected, so a failed reset leaves it empty rather
    /// than stale.
    pub fn reset_from<P: Borrow<Vec<f64>>>(&mut self, points: &[P]) -> Result<f64> {
        self.clear();
        self.resets += 1;
        for p in points {
            let p = p.borrow();
            if p.len() != 2 {
                return Err(MooError::DimensionMismatch {
                    expected: 2,
                    found: p.len(),
                });
            }
            self.insert(p[0], p[1])?;
        }
        Ok(self.recompute())
    }

    /// Total [`Self::insert`] calls.
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Inserts that changed the front.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Number of [`Self::reset_from`] rebuilds.
    pub fn resets(&self) -> u64 {
        self.resets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    #[test]
    fn matches_batch_hypervolume_point_by_point() {
        let pts = [
            (5.0, 5.0),
            (1.0, 4.0),
            (2.0, 2.0),
            (2.0, 2.0), // duplicate
            (4.0, 1.0),
            (3.0, 3.0), // dominated on arrival
            (1.0, 1.0), // dominates everything so far
            (0.5, 6.0),
        ];
        let reference_pt = [8.0, 8.0];
        let mut inc = IncrementalHv2::new(&reference_pt).unwrap();
        let mut seen: Vec<Vec<f64>> = Vec::new();
        for &(x, y) in &pts {
            inc.insert(x, y).unwrap();
            seen.push(vec![x, y]);
            let batch = reference::hypervolume(&seen, &reference_pt).unwrap();
            assert!(
                (inc.hypervolume() - batch).abs() <= 1e-12 * batch.max(1.0),
                "after ({x}, {y}): {} vs {batch}",
                inc.hypervolume()
            );
        }
        assert_eq!(inc.inserts(), pts.len() as u64);
        assert!(inc.accepted() < inc.inserts());
    }

    #[test]
    fn recompute_matches_batch_sweep_exactly() {
        let mut inc = IncrementalHv2::new(&[10.0, 10.0]).unwrap();
        let mut pts = Vec::new();
        let mut state = 0x2545F4914F6CDD1Du64;
        for _ in 0..200 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (state >> 40) as f64 / (1u64 << 24) as f64 * 9.0;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = (state >> 40) as f64 / (1u64 << 24) as f64 * 9.0;
            inc.insert(x, y).unwrap();
            pts.push(vec![x, y]);
        }
        let exact = inc.recompute();
        let batch = reference::hypervolume(&pts, &[10.0, 10.0]).unwrap();
        assert_eq!(exact.to_bits(), batch.to_bits(), "{exact} vs {batch}");
        assert_eq!(inc.hypervolume().to_bits(), exact.to_bits());
    }

    #[test]
    fn dominated_run_removal_keeps_staircase_strict() {
        let mut inc = IncrementalHv2::new(&[10.0, 10.0]).unwrap();
        for (x, y) in [(2.0, 8.0), (4.0, 6.0), (6.0, 4.0), (8.0, 2.0)] {
            assert!(inc.insert(x, y).unwrap());
        }
        // dominates the middle two in one shot
        assert!(inc.insert(3.0, 3.0).unwrap());
        assert_eq!(inc.front(), &[(2.0, 8.0), (3.0, 3.0), (8.0, 2.0)]);
        for w in inc.front().windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 > w[1].1);
        }
        let batch = reference::hypervolume(
            &inc.front()
                .iter()
                .map(|&(x, y)| vec![x, y])
                .collect::<Vec<_>>(),
            &[10.0, 10.0],
        )
        .unwrap();
        assert!((inc.hypervolume() - batch).abs() < 1e-12);
    }

    #[test]
    fn equal_coordinate_edges() {
        let mut inc = IncrementalHv2::new(&[10.0, 10.0]).unwrap();
        assert!(inc.insert(2.0, 5.0).unwrap());
        assert!(!inc.insert(2.0, 5.0).unwrap()); // exact duplicate
        assert!(!inc.insert(2.0, 6.0).unwrap()); // worse y at same x
        assert!(inc.insert(2.0, 4.0).unwrap()); // better y replaces
        assert_eq!(inc.front(), &[(2.0, 4.0)]);
        assert!(!inc.insert(3.0, 4.0).unwrap()); // same y, worse x: dominated
        assert!(inc.insert(1.0, 4.0).unwrap()); // same y, better x replaces
        assert_eq!(inc.front(), &[(1.0, 4.0)]);
        assert!(inc.contains(1.0, 4.0));
        assert!(!inc.contains(2.0, 4.0));
    }

    #[test]
    fn rejects_bad_points() {
        let mut inc = IncrementalHv2::new(&[1.0, 1.0]).unwrap();
        assert_eq!(inc.insert(f64::NAN, 0.0).unwrap_err(), MooError::NonFinite);
        assert_eq!(
            inc.insert(2.0, 0.0).unwrap_err(),
            MooError::ReferenceNotDominating
        );
        assert!(matches!(
            IncrementalHv2::new(&[1.0]).unwrap_err(),
            MooError::DimensionMismatch { .. }
        ));
        assert_eq!(
            IncrementalHv2::new(&[f64::INFINITY, 0.0]).unwrap_err(),
            MooError::NonFinite
        );
    }

    #[test]
    fn reset_rebuilds_and_counts() {
        let mut inc = IncrementalHv2::new(&[4.0, 4.0]).unwrap();
        inc.insert(3.5, 3.5).unwrap();
        let pts = vec![
            vec![1.0, 3.0],
            vec![2.0, 2.0],
            vec![3.0, 1.0],
            vec![2.5, 2.5],
        ];
        let hv = inc.reset_from(&pts).unwrap();
        assert!((hv - 6.0).abs() < 1e-12);
        assert_eq!(inc.front_len(), 3);
        assert_eq!(inc.resets(), 1);
        assert!(inc.contains(2.0, 2.0));
        assert!(!inc.contains(2.5, 2.5));
    }
}
