//! How the hypervolume indicator is optimised over generations (§IV-D's
//! analysis): HV of the *true* objectives of each generation's population
//! for the HW-PR-NAS-guided MOEA vs the two-surrogate MOEA.

use crate::{shared_reference, Harness, MarkdownTable};
use hwpr_hwmodel::Platform;
use hwpr_moo::MooWorkspace;
use hwpr_nasbench::{Architecture, Dataset, SearchSpaceId};
use hwpr_search::{HwPrNasEvaluator, Moea, PairEvaluator};
use std::fmt::Write as _;

/// Runs the study and returns the markdown report.
pub fn run(h: &Harness) -> String {
    let dataset = Dataset::Cifar10;
    let platform = Platform::EdgeGpu;
    let space = SearchSpaceId::NasBench201;
    let data = h.dataset(space, dataset, platform);
    let oracle = h.measured(dataset, platform);

    let mut config = h.scale.moea_config(vec![space]).with_seed(4);
    config.record_populations = true;
    let moea = Moea::new(config).expect("valid config");

    let model = h.train_hw_pr_nas(&data, 4);
    let mut hwpr_eval = HwPrNasEvaluator::new(model, platform);
    let hwpr = moea.run(&mut hwpr_eval).expect("search failed");
    let pair = h.train_brp_nas(&data, 4);
    let mut pair_eval = PairEvaluator::new(pair);
    let brp = moea.run(&mut pair_eval).expect("search failed");

    let objectives = |pop: &[Architecture]| -> Vec<Vec<f64>> {
        pop.iter().map(|a| oracle.true_objectives(a)).collect()
    };
    // shared reference over every snapshot of both runs
    let mut all = Vec::new();
    for result in [&hwpr, &brp] {
        for g in &result.history {
            if let Some(pop) = &g.population {
                all.push(objectives(pop));
            }
        }
    }
    let reference = shared_reference(&all);
    // one workspace across every generation snapshot of both runs; the
    // kernel extracts the front itself
    let mut moo = MooWorkspace::new();
    let mut hv_of = |pop: &[Architecture]| -> f64 {
        let objs = objectives(pop);
        moo.hypervolume(&objs, &reference).expect("bounded")
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Extension — hypervolume convergence over generations\n"
    );
    let _ = writeln!(
        out,
        "True-objective hypervolume of each generation's population \
         (single run, seed 4, scale `{:?}`).\n",
        h.scale
    );
    let mut t = MarkdownTable::new(vec!["Generation", "MOEA + HW-PR-NAS ↑", "MOEA + BRP-NAS ↑"]);
    let gens = hwpr.history.len().min(brp.history.len());
    let step = (gens / 10).max(1);
    for g in (0..gens).step_by(step) {
        let hw = hwpr.history[g].population.as_ref().map(|p| hv_of(p));
        let bp = brp.history[g].population.as_ref().map(|p| hv_of(p));
        t.row(vec![
            (g + 1).to_string(),
            hw.map_or("-".into(), |v| format!("{v:.1}")),
            bp.map_or("-".into(), |v| format!("{v:.1}")),
        ]);
    }
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\nExpected shape: the rank-preserving surrogate climbs faster and \
         plateaus higher because its selection pressure points directly at \
         dominance, while per-objective surrogate errors compound inside \
         the non-dominated sorting."
    );
    out
}
