//! Multi-objective optimization primitives for HW-PR-NAS.
//!
//! Everything here follows the *minimization* convention: an architecture's
//! objective vector is e.g. `[error = 100 - accuracy, latency_ms]`, so
//! smaller is better in every coordinate. The crate provides:
//!
//! - [`dominates`] — strict Pareto dominance (§II-C of the paper),
//! - [`fast_non_dominated_sort`] / [`pareto_ranks`] — NSGA-II layering,
//!   satisfying Eqs. (1)–(3) of the paper,
//! - [`crowding_distance`] — NSGA-II diversity measure for tie-breaking,
//! - [`hypervolume`] — exact hypervolume (2-D sweep, WFG recursion for
//!   higher dimensions) and [`normalized_hypervolume`], the paper's
//!   front-quality metric (Figs. 1 and 6, Table III),
//! - [`nadir_reference_point`] — the "furthest point from the Pareto
//!   front" reference the paper uses,
//! - [`MooWorkspace`] — a reusable flat arena the hot paths hold so warm
//!   sort/crowding/hypervolume calls allocate nothing, with an
//!   O(N log N) sweep for the paper's two-objective configuration,
//! - [`IncrementalHv2`] — a persistent 2-D front archive with
//!   O(Δ log N) per-generation hypervolume maintenance,
//! - [`ParetoArchive`] — a global non-dominated elite archive whose
//!   contents are independent of offer order, the merge target for the
//!   island-model search,
//! - [`reference`] — the original kernels, frozen as ground truth for
//!   differential tests and benchmarks.
//!
//! # Examples
//!
//! ```
//! use hwpr_moo::{dominates, pareto_ranks};
//!
//! let points = vec![
//!     vec![1.0, 4.0], // front 0
//!     vec![2.0, 2.0], // front 0
//!     vec![3.0, 3.0], // dominated by [2, 2]
//! ];
//! assert!(dominates(&points[1], &points[2]));
//! assert_eq!(pareto_ranks(&points).unwrap(), vec![0, 0, 1]);
//! ```

#![warn(missing_docs)]
mod archive;
mod dominance;
mod hypervolume;
mod incremental;
pub mod reference;
mod sort;
mod workspace;

pub use archive::{ArchiveEntry, ParetoArchive};
pub use dominance::{dominates, weakly_dominates};
pub use hypervolume::{hypervolume, nadir_reference_point, normalized_hypervolume};
pub use incremental::IncrementalHv2;
pub use sort::{crowding_distance, fast_non_dominated_sort, pareto_front, pareto_ranks};
pub use workspace::{Fronts, MooWorkspace};

use std::error::Error;
use std::fmt;

/// Error produced by multi-objective computations.
#[derive(Debug, Clone, PartialEq)]
pub enum MooError {
    /// The point set is empty where at least one point is required.
    EmptySet,
    /// Points (or the reference point) have inconsistent dimensionality.
    DimensionMismatch {
        /// Expected number of objectives.
        expected: usize,
        /// Found number of objectives.
        found: usize,
    },
    /// An objective value is NaN or infinite.
    NonFinite,
    /// The reference point does not weakly dominate-from-below every point
    /// (some point lies outside the reference box).
    ReferenceNotDominating,
}

impl fmt::Display for MooError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MooError::EmptySet => write!(f, "point set is empty"),
            MooError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "objective dimension mismatch: expected {expected}, found {found}"
                )
            }
            MooError::NonFinite => write!(f, "objective values must be finite"),
            MooError::ReferenceNotDominating => {
                write!(
                    f,
                    "reference point must be worse than every point in every objective"
                )
            }
        }
    }
}

impl Error for MooError {}

/// Convenience alias for fallible multi-objective computations.
pub type Result<T> = std::result::Result<T, MooError>;

pub(crate) fn validate_points<P: std::borrow::Borrow<Vec<f64>>>(points: &[P]) -> Result<usize> {
    let first = points.first().ok_or(MooError::EmptySet)?;
    let dim = first.borrow().len();
    if dim == 0 {
        return Err(MooError::DimensionMismatch {
            expected: 1,
            found: 0,
        });
    }
    for p in points {
        let p = p.borrow();
        if p.len() != dim {
            return Err(MooError::DimensionMismatch {
                expected: dim,
                found: p.len(),
            });
        }
        if p.iter().any(|v| !v.is_finite()) {
            return Err(MooError::NonFinite);
        }
    }
    Ok(dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_catches_bad_inputs() {
        assert_eq!(
            validate_points::<Vec<f64>>(&[]).unwrap_err(),
            MooError::EmptySet
        );
        assert!(matches!(
            validate_points(&[vec![]]).unwrap_err(),
            MooError::DimensionMismatch { .. }
        ));
        assert!(matches!(
            validate_points(&[vec![1.0], vec![1.0, 2.0]]).unwrap_err(),
            MooError::DimensionMismatch { .. }
        ));
        assert_eq!(
            validate_points(&[vec![f64::NAN]]).unwrap_err(),
            MooError::NonFinite
        );
        assert_eq!(validate_points(&[vec![1.0, 2.0]]).unwrap(), 2);
    }

    #[test]
    fn errors_display() {
        for e in [
            MooError::EmptySet,
            MooError::DimensionMismatch {
                expected: 2,
                found: 3,
            },
            MooError::NonFinite,
            MooError::ReferenceNotDominating,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn point_set(dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
        proptest::collection::vec(proptest::collection::vec(0.0f64..100.0, dim), 1..25)
    }

    proptest! {
        #[test]
        fn dominance_is_a_strict_partial_order(points in point_set(2)) {
            for a in &points {
                // irreflexive
                prop_assert!(!dominates(a, a));
                for b in &points {
                    // asymmetric
                    if dominates(a, b) {
                        prop_assert!(!dominates(b, a));
                    }
                    for c in &points {
                        // transitive
                        if dominates(a, b) && dominates(b, c) {
                            prop_assert!(dominates(a, c));
                        }
                    }
                }
            }
        }

        /// Eqs. (1)-(3) of the paper: within a front no one dominates anyone;
        /// no member of front k+1 dominates any member of front k; every
        /// member of front k+1 is dominated by someone in front k.
        #[test]
        fn fronts_satisfy_paper_equations(points in point_set(3)) {
            let fronts = fast_non_dominated_sort(&points).unwrap();
            for (k, front) in fronts.iter().enumerate() {
                for &i in front {
                    for &j in front {
                        prop_assert!(!dominates(&points[i], &points[j])); // Eq. 1
                    }
                }
                if k + 1 < fronts.len() {
                    for &i in &fronts[k + 1] {
                        for &j in front {
                            prop_assert!(!dominates(&points[i], &points[j])); // Eq. 2
                        }
                        // Eq. 3
                        prop_assert!(front.iter().any(|&j| dominates(&points[j], &points[i])));
                    }
                }
            }
            // fronts partition the set
            let total: usize = fronts.iter().map(Vec::len).sum();
            prop_assert_eq!(total, points.len());
        }

        #[test]
        fn hypervolume_monotone_under_extra_points(points in point_set(2)) {
            let reference = nadir_reference_point(&points, 1.0).unwrap();
            let hv_all = hypervolume(&points, &reference).unwrap();
            let subset = &points[..points.len().max(1) - 1];
            if !subset.is_empty() {
                let hv_subset = hypervolume(subset, &reference).unwrap();
                prop_assert!(hv_all + 1e-9 >= hv_subset);
            }
        }

        #[test]
        fn hypervolume_invariant_to_order(points in point_set(3)) {
            let reference = nadir_reference_point(&points, 1.0).unwrap();
            let hv = hypervolume(&points, &reference).unwrap();
            let mut reversed = points.clone();
            reversed.reverse();
            let hv_rev = hypervolume(&reversed, &reference).unwrap();
            prop_assert!((hv - hv_rev).abs() < 1e-6 * hv.max(1.0));
        }
    }
}
