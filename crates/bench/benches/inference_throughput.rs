//! Frozen tape-free inference vs the recording-tape reference path — the
//! MOEA hot-path numbers behind `BENCH_pr4.json`.
//!
//! - `tape_serial` — the reference path (`predict_full_tape`): tape reset
//!   + parameter rebinding + op recording every chunk.
//! - `frozen_serial` — the frozen engine (`predict_full`): persistent
//!   prepacked weights, pooled activation arena, no tape.
//! - `frozen_parallel` — `predict_full_parallel` over two scoped workers,
//!   each with its own checked-out arena (pack-free). Only expected to
//!   beat `frozen_serial` on multi-core hosts; on a single-CPU runner the
//!   scoped-thread spawn is pure overhead.
//!
//! Acceptance: `frozen_serial` at least 1.5x faster per batch than
//! `tape_serial`; all three paths are bit-identical (differential tests
//! in `hwpr-core`).
//!
//! The `frozen_b{B}_{prec}` grid (PR-6, `BENCH_pr6.json`) sweeps the
//! compiled batch width (1 / 8 / 64) against the weight-panel precision
//! ({f32, f16, int8} via [`freeze_with`]): width 1 shows the per-chunk
//! dispatch floor, width 64 the amortised batched path. The f32 grid rows
//! stay bit-identical to `frozen_serial`; reduced-precision rows are
//! rank-faithful (Kendall tau >= 0.99, asserted in `hwpr-core` tests).
//!
//! [`freeze_with`]: hwpr_core::HwPrNas::freeze_with

use criterion::{criterion_group, criterion_main, Criterion};
use hwpr_bench::{fixture_archs, fixture_model};
use hwpr_hwmodel::Platform;
use hwpr_nasbench::SearchSpaceId;
use hwpr_tensor::Precision;

fn bench_inference_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_throughput");
    group.sample_size(10);
    let model = fixture_model(64);
    let archs = fixture_archs(SearchSpaceId::NasBench201, 256);
    // warm the encoding cache and compile the frozen engine up front so
    // every measured iteration is pure forward cost on both paths
    model.predict_full(&archs, Platform::EdgeGpu).unwrap();
    model.predict_full_tape(&archs, Platform::EdgeGpu).unwrap();

    group.bench_function("tape_serial", |b| {
        b.iter(|| model.predict_full_tape(&archs, Platform::EdgeGpu).unwrap())
    });
    group.bench_function("frozen_serial", |b| {
        b.iter(|| model.predict_full(&archs, Platform::EdgeGpu).unwrap())
    });
    group.bench_function("frozen_parallel", |b| {
        b.iter(|| {
            model
                .predict_full_parallel(&archs, Platform::EdgeGpu, 2)
                .unwrap()
        })
    });
    // batch-width x precision grid: recompile the frozen engine per cell,
    // then measure the same 256-arch sweep the rows above use
    for precision in [Precision::F32, Precision::F16, Precision::Int8] {
        for width in [1usize, 8, 64] {
            model.freeze_with(width, precision);
            model.predict_full(&archs, Platform::EdgeGpu).unwrap();
            group.bench_function(format!("frozen_b{width}_{}", precision.label()), |b| {
                b.iter(|| model.predict_full(&archs, Platform::EdgeGpu).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_inference_throughput);
criterion_main!(benches);
