//! Pareto dominance relations (minimization convention).

/// Strict Pareto dominance: `a` dominates `b` iff `a` is no worse in every
/// objective and strictly better in at least one (§II-C of the paper).
///
/// # Panics
///
/// Panics if the two points have different lengths.
///
/// # Examples
///
/// ```
/// use hwpr_moo::dominates;
/// assert!(dominates(&[1.0, 2.0], &[2.0, 2.0]));
/// assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0])); // trade-off: incomparable
/// ```
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "dominance requires equal dimensions");
    let mut strictly_better = false;
    for (&x, &y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Outcome of a single-pass pairwise dominance comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DomOrdering {
    /// The left point strictly dominates the right one.
    Left,
    /// The right point strictly dominates the left one.
    Right,
    /// Neither dominates (incomparable or equal).
    Neither,
}

/// Decides both `dominates(a, b)` and `dominates(b, a)` in one pass over
/// the objectives — the workspace sort performs one comparison per (i, j)
/// pair instead of two [`dominates`] calls.
#[inline]
pub(crate) fn compare(a: &[f64], b: &[f64]) -> DomOrdering {
    debug_assert_eq!(a.len(), b.len(), "dominance requires equal dimensions");
    let mut a_better = false;
    let mut b_better = false;
    for (&x, &y) in a.iter().zip(b) {
        if x < y {
            if b_better {
                return DomOrdering::Neither;
            }
            a_better = true;
        } else if y < x {
            if a_better {
                return DomOrdering::Neither;
            }
            b_better = true;
        }
    }
    match (a_better, b_better) {
        (true, false) => DomOrdering::Left,
        (false, true) => DomOrdering::Right,
        _ => DomOrdering::Neither,
    }
}

/// Weak dominance: `a` is no worse than `b` in every objective.
///
/// # Panics
///
/// Panics if the two points have different lengths.
pub fn weakly_dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "dominance requires equal dimensions");
    a.iter().zip(b).all(|(&x, &y)| x <= y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_dominance_cases() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0])); // equal: no strict gain
        assert!(!dominates(&[1.0, 3.0], &[3.0, 1.0])); // incomparable
        assert!(!dominates(&[2.0], &[1.0]));
    }

    #[test]
    fn weak_dominance_includes_equality() {
        assert!(weakly_dominates(&[1.0, 2.0], &[1.0, 2.0]));
        assert!(weakly_dominates(&[1.0, 1.0], &[1.0, 2.0]));
        assert!(!weakly_dominates(&[2.0, 1.0], &[1.0, 2.0]));
    }

    #[test]
    #[should_panic(expected = "equal dimensions")]
    fn mismatched_dimensions_panic() {
        let _ = dominates(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn single_pass_compare_agrees_with_dominates() {
        let pts = [
            vec![1.0, 1.0],
            vec![2.0, 2.0],
            vec![1.0, 2.0],
            vec![2.0, 1.0],
            vec![1.0, 1.0],
        ];
        for a in &pts {
            for b in &pts {
                let expected = match (dominates(a, b), dominates(b, a)) {
                    (true, false) => DomOrdering::Left,
                    (false, true) => DomOrdering::Right,
                    (false, false) => DomOrdering::Neither,
                    (true, true) => unreachable!("dominance is asymmetric"),
                };
                assert_eq!(compare(a, b), expected, "{a:?} vs {b:?}");
            }
        }
    }
}
