//! Differential fixture: the frozen tape-free inference engine must stay
//! inside the documented error budget against the recording-tape
//! reference path — f32 max-abs ≤ 1e-5 with Kendall τ = 1.0, and rank
//! preservation (τ ≥ 0.99) when CI re-runs this binary under
//! `HWPR_INFER_PRECISION=f16` / `int8` — for every public predict
//! method, every latency-head platform, and uneven final chunks.
//!
//! (Per-encoder-type differentials — AF / LSTM / GCN and combinations —
//! live as unit tests in `hwpr_core::frozen`; here the full compiled
//! model is exercised end to end.)

use hwpr_core::{HwPrNas, ModelConfig, Precision, SurrogateDataset, TrainConfig};
use hwpr_hwmodel::{Platform, SimBench, SimBenchConfig};
use hwpr_nasbench::{Architecture, Dataset, SearchSpaceId};
use proptest::prelude::*;
use std::sync::OnceLock;

fn bench(n: usize) -> SimBench {
    SimBench::generate(SimBenchConfig {
        space: SearchSpaceId::NasBench201,
        sample_size: Some(n),
        seed: 3,
    })
}

/// A scoring population larger than the training set, so batch widths
/// 64 and 129 exercise uneven final chunks and Kendall τ has enough
/// pairs to be meaningful.
fn eval_archs(n: usize) -> Vec<Architecture> {
    bench(n)
        .entries()
        .iter()
        .map(|e| e.arch().clone())
        .collect()
}

fn tau(a: &[f64], b: &[f64]) -> f64 {
    let af: Vec<f32> = a.iter().map(|&x| x as f32).collect();
    let bf: Vec<f32> = b.iter().map(|&x| x as f32).collect();
    hwpr_metrics::kendall_tau(&af, &bf).unwrap()
}

/// [`tau`], but `None` when either side is constant (`ZeroVariance`) —
/// rank preservation is vacuous on a degenerate column, e.g. the tiny
/// fixture predicting one latency for every architecture.
fn try_tau(a: &[f64], b: &[f64]) -> Option<f64> {
    let af: Vec<f32> = a.iter().map(|&x| x as f32).collect();
    let bf: Vec<f32> = b.iter().map(|&x| x as f32).collect();
    hwpr_metrics::kendall_tau(&af, &bf).ok()
}

fn trained_single() -> (HwPrNas, Vec<Architecture>) {
    let b = bench(48);
    let data = SurrogateDataset::from_simbench(&b, Dataset::Cifar10, Platform::EdgeGpu).unwrap();
    let (model, _) = HwPrNas::fit(&data, &ModelConfig::tiny(), &TrainConfig::tiny()).unwrap();
    let archs = data.samples().iter().map(|s| s.arch.clone()).collect();
    (model, archs)
}

fn trained_multi() -> (HwPrNas, Vec<Architecture>) {
    let b = bench(40);
    let platforms = [Platform::EdgeGpu, Platform::Pixel3];
    let (model, _) = HwPrNas::fit_multi(
        b.entries(),
        Dataset::Cifar10,
        &platforms,
        &ModelConfig::tiny(),
        &TrainConfig::tiny(),
    )
    .unwrap();
    let archs = b.entries().iter().map(|e| e.arch().clone()).collect();
    (model, archs)
}

/// The precision the default frozen engine compiles at — the same env
/// knob the engine itself reads. CI re-runs this test binary with
/// `HWPR_INFER_PRECISION=f16` and `int8` to exercise the reduced-
/// precision budget on every differential below.
fn env_precision() -> Precision {
    std::env::var("HWPR_INFER_PRECISION")
        .ok()
        .and_then(|spec| Precision::parse(&spec))
        .unwrap_or(Precision::F32)
}

fn max_abs(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Frozen-vs-tape score budget: at f32, max-abs ≤ 1e-5 and τ = 1.0; at
/// f16/int8 the guarantee is rank preservation, τ ≥ 0.99.
fn assert_scores_within_budget(frozen: &[f64], tape: &[f64], what: &str) {
    match env_precision() {
        Precision::F32 => {
            let worst = max_abs(frozen, tape);
            assert!(worst <= 1e-5, "{what}: max-abs {worst:e} > 1e-5");
            if frozen.len() > 2 {
                if let Some(t) = try_tau(frozen, tape) {
                    assert!(t >= 1.0, "{what}: Kendall tau {t:.4} < 1.0");
                }
            }
        }
        _ => {
            if let Some(t) = try_tau(frozen, tape) {
                assert!(t >= 0.99, "{what}: Kendall tau {t:.4} < 0.99");
            }
        }
    }
}

fn assert_within_budget(model: &HwPrNas, archs: &[Architecture], platform: Platform) {
    let frozen_scores = model.predict_scores(archs, platform).unwrap();
    let tape_scores = model.predict_scores_tape(archs, platform).unwrap();
    assert_scores_within_budget(&frozen_scores, &tape_scores, "scores");

    let (ff_scores, ff_objs) = model.predict_full(archs, platform).unwrap();
    let (tf_scores, tf_objs) = model.predict_full_tape(archs, platform).unwrap();
    assert_scores_within_budget(&ff_scores, &tf_scores, "full scores");
    let f_flat: Vec<f64> = ff_objs.iter().flatten().copied().collect();
    let t_flat: Vec<f64> = tf_objs.iter().flatten().copied().collect();
    if env_precision() == Precision::F32 {
        let worst = max_abs(&f_flat, &t_flat);
        assert!(worst <= 1e-5, "full objectives: max-abs {worst:e} > 1e-5");
    }

    let frozen_objs = model.predict_objectives(archs, platform).unwrap();
    let tape_objs = model.predict_objectives_tape(archs, platform).unwrap();
    if env_precision() == Precision::F32 {
        let f_flat: Vec<f64> = frozen_objs.iter().flat_map(|&(a, l)| [a, l]).collect();
        let t_flat: Vec<f64> = tape_objs.iter().flat_map(|&(a, l)| [a, l]).collect();
        let worst = max_abs(&f_flat, &t_flat);
        assert!(worst <= 1e-5, "objectives: max-abs {worst:e} > 1e-5");
    } else {
        type ObjColumn = fn(&(f64, f64)) -> f64;
        let pick: [(ObjColumn, &str); 2] = [(|o| o.0, "accuracy"), (|o| o.1, "latency")];
        for (col, name) in pick {
            let f: Vec<f64> = frozen_objs.iter().map(col).collect();
            let t: Vec<f64> = tape_objs.iter().map(col).collect();
            if let Some(tv) = try_tau(&f, &t) {
                assert!(tv >= 0.99, "{name} objectives: Kendall tau {tv:.4} < 0.99");
            }
        }
    }
}

#[test]
fn frozen_engine_stays_within_budget_of_tape() {
    let (model, archs) = trained_single();
    assert_within_budget(&model, &archs, Platform::EdgeGpu);
}

#[test]
fn frozen_engine_matches_tape_on_every_platform() {
    let (model, archs) = trained_multi();
    for &platform in model.platforms() {
        assert_within_budget(&model, &archs, platform);
    }
}

#[test]
fn uneven_final_chunks_stay_within_budget() {
    let (model, archs) = trained_single();
    let tape_scores = model
        .predict_scores_tape(&archs, Platform::EdgeGpu)
        .unwrap();
    // 48 archs in chunks of 7 leaves a final chunk of 6; batch 5 leaves 3
    for batch in [7usize, 5, 48, 64] {
        let frozen = model.freeze_with_batch(batch);
        assert_eq!(frozen.batch(), batch);
        let scores = model.predict_scores(&archs, Platform::EdgeGpu).unwrap();
        assert_scores_within_budget(&scores, &tape_scores, "chunked scores");
    }
}

#[test]
fn parallel_path_is_bit_identical_and_pack_free() {
    let (model, archs) = trained_single();
    let serial = model.predict_full(&archs, Platform::EdgeGpu).unwrap();
    for threads in [2usize, 3, 8] {
        let parallel = model
            .predict_full_parallel(&archs, Platform::EdgeGpu, threads)
            .unwrap();
        assert_eq!(parallel, serial, "{threads} threads diverge from serial");
    }
}

#[test]
fn batched_engine_matches_serial_bit_identically() {
    let (model, _) = trained_single();
    let archs = eval_archs(160);
    model.freeze_with(1, Precision::F32);
    let serial = model.predict_full(&archs, Platform::EdgeGpu).unwrap();
    for batch in [7usize, 64, 129] {
        model.freeze_with(batch, Precision::F32);
        let batched = model.predict_full(&archs, Platform::EdgeGpu).unwrap();
        assert_eq!(batched, serial, "batch width {batch} diverges from serial");
    }
}

#[test]
fn reduced_precision_preserves_rank_on_uneven_batches() {
    let (model, _) = trained_single();
    let archs = eval_archs(160);
    model.freeze_with(64, Precision::F32);
    let base = model.predict_scores(&archs, Platform::EdgeGpu).unwrap();
    for precision in [Precision::F16, Precision::Int8] {
        for batch in [1usize, 7, 64, 129] {
            model.freeze_with(batch, precision);
            let scores = model.predict_scores(&archs, Platform::EdgeGpu).unwrap();
            let t = tau(&base, &scores);
            assert!(
                t >= 0.99,
                "{} batch {batch}: Kendall tau {t:.4} < 0.99",
                precision.label()
            );
        }
    }
}

#[test]
fn quantized_rank_is_preserved_on_every_platform_head() {
    let (model, _) = trained_multi();
    let archs = eval_archs(160);
    for &platform in model.platforms() {
        model.freeze_with(64, Precision::F32);
        let base = model.predict_scores(&archs, platform).unwrap();
        for precision in [Precision::F16, Precision::Int8] {
            model.freeze_with(64, precision);
            let scores = model.predict_scores(&archs, platform).unwrap();
            let t = tau(&base, &scores);
            assert!(
                t >= 0.99,
                "{platform} {}: Kendall tau {t:.4} < 0.99",
                precision.label()
            );
        }
    }
}

/// Shared fixture for the proptest below only — proptest cases run
/// sequentially inside one `#[test]`, so reinstalling the frozen engine
/// per case never races with the other tests (which train their own
/// models).
fn proptest_fixture() -> &'static (HwPrNas, Vec<Architecture>, Vec<f64>) {
    static FIX: OnceLock<(HwPrNas, Vec<Architecture>, Vec<f64>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let (model, archs) = trained_single();
        let tape = model
            .predict_scores_tape(&archs, Platform::EdgeGpu)
            .unwrap();
        (model, archs, tape)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Scores are per-architecture, so any prefix scored at any batch
    // width must reproduce the tape reference within the f32 error
    // budget (the engine is explicitly frozen at f32 here regardless of
    // the env precision).
    #[test]
    fn any_batch_width_stays_within_budget_of_the_tape(
        batch in 1usize..=160,
        len in 1usize..=48,
    ) {
        let (model, archs, tape) = proptest_fixture();
        model.freeze_with(batch, Precision::F32);
        let scores = model
            .predict_scores(&archs[..len], Platform::EdgeGpu)
            .unwrap();
        let worst = max_abs(&scores, &tape[..len]);
        prop_assert!(worst <= 1e-5, "batch {} len {}: max-abs {:e}", batch, len, worst);
    }
}

#[test]
fn unknown_platform_still_fails_fast() {
    let (model, archs) = trained_single();
    assert!(model.predict_scores(&archs, Platform::Eyeriss).is_err());
    assert!(model
        .predict_full_parallel(&archs, Platform::Eyeriss, 4)
        .is_err());
}
