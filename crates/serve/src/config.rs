//! Server tuning knobs and their `HWPR_SERVE_*` environment overrides.
//!
//! Every variable follows the workspace warn-and-default policy
//! (`hwpr_obs::env_or_else`): junk values warn through the telemetry
//! sink and fall back — a typo must never silently change serving
//! behaviour, and must never kill the server either.

use std::time::Duration;

/// `HWPR_SERVE_MAX_BATCH`: micro-batch coalesce target (rows).
pub const MAX_BATCH_ENV: &str = "HWPR_SERVE_MAX_BATCH";
/// `HWPR_SERVE_BATCH_DEADLINE_US`: how long the queue may hold a request
/// waiting for coalesce partners, in microseconds (`0` = no coalescing
/// delay — every batch ships as soon as a worker is free).
pub const DEADLINE_ENV: &str = "HWPR_SERVE_BATCH_DEADLINE_US";
/// `HWPR_SERVE_WORKERS`: prediction worker threads (`0` = one per
/// available core).
pub const WORKERS_ENV: &str = "HWPR_SERVE_WORKERS";
/// `HWPR_SERVE_QUEUE_CAP`: admission-queue capacity in requests; pushes
/// beyond it are shed with an `Overloaded` response.
pub const QUEUE_CAP_ENV: &str = "HWPR_SERVE_QUEUE_CAP";

/// Default coalesce target. Matches the frozen engine's sweet spot: PR 6
/// measured batch 64 at ~4.9x the per-architecture throughput of batch 1.
pub const DEFAULT_MAX_BATCH: usize = 64;
/// Default coalesce deadline (µs). Two orders of magnitude under a
/// millisecond-scale client timeout, yet long enough for concurrent
/// batch-1 clients on one host to pile onto the same forward.
pub const DEFAULT_DEADLINE_US: u64 = 200;
/// Default worker-thread count.
pub const DEFAULT_WORKERS: usize = 1;
/// Default admission-queue capacity.
pub const DEFAULT_QUEUE_CAP: usize = 1024;
/// Hard ceiling on the worker count, mirroring the island-count cap.
const MAX_WORKERS: usize = 256;

/// Runtime configuration for a [`crate::Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Coalesce target: the queue releases a batch once this many rows
    /// for one (model, platform, kind) key are waiting.
    pub max_batch: usize,
    /// How long the queue holds a leader request for coalesce partners.
    pub batch_deadline: Duration,
    /// Prediction worker threads (`0` = one per available core).
    pub workers: usize,
    /// Admission-queue capacity (requests) before shedding.
    pub queue_cap: usize,
    /// Requests older than this are shed with `Overloaded` instead of
    /// being served stale results late.
    pub request_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: DEFAULT_MAX_BATCH,
            batch_deadline: Duration::from_micros(DEFAULT_DEADLINE_US),
            workers: DEFAULT_WORKERS,
            queue_cap: DEFAULT_QUEUE_CAP,
            request_timeout: Duration::from_secs(5),
        }
    }
}

impl ServeConfig {
    /// Applies any set `HWPR_SERVE_*` environment overrides
    /// (warn-and-default on junk, like every other `HWPR_*` knob).
    pub fn with_env_overrides(mut self) -> Self {
        if std::env::var(MAX_BATCH_ENV).is_ok() {
            self.max_batch = max_batch();
        }
        if std::env::var(DEADLINE_ENV).is_ok() {
            self.batch_deadline = Duration::from_micros(batch_deadline_us());
        }
        if std::env::var(WORKERS_ENV).is_ok() {
            self.workers = worker_override();
        }
        if std::env::var(QUEUE_CAP_ENV).is_ok() {
            self.queue_cap = queue_cap();
        }
        self
    }

    /// The defaults with every environment override applied.
    pub fn from_env() -> Self {
        Self::default().with_env_overrides()
    }

    /// The concrete worker-thread count (`workers`, resolving `0` to the
    /// machine's available parallelism).
    pub fn worker_count(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map_or(1, |n| n.get())
                .min(MAX_WORKERS)
        } else {
            self.workers
        }
    }
}

/// Coalesce target: `HWPR_SERVE_MAX_BATCH` when set to a positive
/// integer, otherwise [`DEFAULT_MAX_BATCH`] (also the junk fallback,
/// with a warning).
pub fn max_batch() -> usize {
    hwpr_obs::env_or_else(
        MAX_BATCH_ENV,
        "a positive integer",
        parse_positive,
        || DEFAULT_MAX_BATCH,
        DEFAULT_MAX_BATCH,
    )
}

/// Coalesce deadline in µs: `HWPR_SERVE_BATCH_DEADLINE_US` when set to a
/// non-negative integer (`0` disables coalescing delay), otherwise
/// [`DEFAULT_DEADLINE_US`].
pub fn batch_deadline_us() -> u64 {
    hwpr_obs::env_or_else(
        DEADLINE_ENV,
        "a non-negative integer (microseconds)",
        parse_u64,
        || DEFAULT_DEADLINE_US,
        DEFAULT_DEADLINE_US,
    )
}

/// Worker threads: `HWPR_SERVE_WORKERS` when set to an integer in
/// `0..=256` (`0` = one per core), otherwise [`DEFAULT_WORKERS`].
pub fn worker_override() -> usize {
    hwpr_obs::env_or_else(
        WORKERS_ENV,
        "an integer in 0..=256 (0 = one per core)",
        parse_workers,
        || DEFAULT_WORKERS,
        DEFAULT_WORKERS,
    )
}

/// Queue capacity: `HWPR_SERVE_QUEUE_CAP` when set to a positive
/// integer, otherwise [`DEFAULT_QUEUE_CAP`].
pub fn queue_cap() -> usize {
    hwpr_obs::env_or_else(
        QUEUE_CAP_ENV,
        "a positive integer",
        parse_positive,
        || DEFAULT_QUEUE_CAP,
        DEFAULT_QUEUE_CAP,
    )
}

fn parse_positive(spec: &str) -> Option<usize> {
    spec.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

fn parse_u64(spec: &str) -> Option<u64> {
    spec.trim().parse::<u64>().ok()
}

fn parse_workers(spec: &str) -> Option<usize> {
    spec.trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n <= MAX_WORKERS)
}

/// Spec-level parsers for the warn-and-default tests (no env mutation).
#[cfg(test)]
pub(crate) mod spec {
    pub(crate) fn max_batch(spec: &str) -> usize {
        hwpr_obs::spec_or(
            super::MAX_BATCH_ENV,
            "a positive integer",
            spec,
            super::parse_positive,
            super::DEFAULT_MAX_BATCH,
        )
    }

    pub(crate) fn deadline_us(spec: &str) -> u64 {
        hwpr_obs::spec_or(
            super::DEADLINE_ENV,
            "a non-negative integer (microseconds)",
            spec,
            super::parse_u64,
            super::DEFAULT_DEADLINE_US,
        )
    }

    pub(crate) fn workers(spec: &str) -> usize {
        hwpr_obs::spec_or(
            super::WORKERS_ENV,
            "an integer in 0..=256 (0 = one per core)",
            spec,
            super::parse_workers,
            super::DEFAULT_WORKERS,
        )
    }

    pub(crate) fn queue_cap(spec: &str) -> usize {
        hwpr_obs::spec_or(
            super::QUEUE_CAP_ENV,
            "a positive integer",
            spec,
            super::parse_positive,
            super::DEFAULT_QUEUE_CAP,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 4-variable parse matrix (mirrors the `HWPR_ISLANDS` /
    /// `HWPR_MIGRATION_EVERY` / `HWPR_CHECKPOINT_EVERY` matrix from the
    /// island-search PR): every knob accepts its grammar and
    /// warn-falls-back to its documented default on junk.
    #[test]
    fn serve_env_specs_warn_and_default_on_junk() {
        // HWPR_SERVE_MAX_BATCH: positive integer
        assert_eq!(spec::max_batch("1"), 1);
        assert_eq!(spec::max_batch(" 128 "), 128);
        assert_eq!(spec::max_batch("0"), DEFAULT_MAX_BATCH);
        assert_eq!(spec::max_batch("-8"), DEFAULT_MAX_BATCH);
        assert_eq!(spec::max_batch("lots"), DEFAULT_MAX_BATCH);
        assert_eq!(spec::max_batch(""), DEFAULT_MAX_BATCH);

        // HWPR_SERVE_BATCH_DEADLINE_US: non-negative integer, 0 allowed
        assert_eq!(spec::deadline_us("0"), 0);
        assert_eq!(spec::deadline_us(" 250 "), 250);
        assert_eq!(spec::deadline_us("-1"), DEFAULT_DEADLINE_US);
        assert_eq!(spec::deadline_us("0.5"), DEFAULT_DEADLINE_US);
        assert_eq!(spec::deadline_us("soon"), DEFAULT_DEADLINE_US);
        assert_eq!(spec::deadline_us(""), DEFAULT_DEADLINE_US);

        // HWPR_SERVE_WORKERS: 0..=256 (0 = auto)
        assert_eq!(spec::workers("0"), 0);
        assert_eq!(spec::workers("4"), 4);
        assert_eq!(spec::workers("256"), 256);
        assert_eq!(spec::workers("257"), DEFAULT_WORKERS);
        assert_eq!(spec::workers("-2"), DEFAULT_WORKERS);
        assert_eq!(spec::workers("many"), DEFAULT_WORKERS);

        // HWPR_SERVE_QUEUE_CAP: positive integer
        assert_eq!(spec::queue_cap("1"), 1);
        assert_eq!(spec::queue_cap("4096"), 4096);
        assert_eq!(spec::queue_cap("0"), DEFAULT_QUEUE_CAP);
        assert_eq!(spec::queue_cap("deep"), DEFAULT_QUEUE_CAP);
    }

    #[test]
    fn worker_count_resolves_auto() {
        let auto = ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        };
        assert!(auto.worker_count() >= 1);
        let fixed = ServeConfig {
            workers: 3,
            ..ServeConfig::default()
        };
        assert_eq!(fixed.worker_count(), 3);
    }
}
