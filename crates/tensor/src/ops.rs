//! Numerical kernels on [`Matrix`]: GEMM, element-wise maps, reductions and
//! the special block products used by the batched graph convolution.

use crate::gemm::{self, Layout};
use crate::matrix::Matrix;
use crate::shape::ShapeError;
use crate::Result;

impl Matrix {
    /// Matrix product `self @ rhs`.
    ///
    /// Runs on the cache-tiled, register-blocked driver in [`crate::gemm`];
    /// the naive loop nest survives as [`crate::reference::matmul`] for
    /// differential testing.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols() != rhs.rows() {
            return Err(ShapeError::new("matmul", self.shape(), rhs.shape()));
        }
        let (m, k) = self.shape();
        let n = rhs.cols();
        let mut out = Matrix::zeros(m, n);
        gemm::gemm(
            (m, n, k),
            self.as_slice(),
            Layout::RowMajor,
            rhs.as_slice(),
            Layout::RowMajor,
            out.as_mut_slice(),
        );
        Ok(out)
    }

    /// Matrix product `self @ rhs` written into a caller-provided matrix.
    ///
    /// `out` is overwritten (it does not need to be zeroed). This is the
    /// allocation-free form of [`Matrix::matmul`] used by the training hot
    /// path, where `out` comes from a [`crate::BufferPool`].
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `self.cols() != rhs.rows()` or `out` is
    /// not `self.rows() x rhs.cols()`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.cols() != rhs.rows() {
            return Err(ShapeError::new("matmul_into", self.shape(), rhs.shape()));
        }
        let (m, k) = self.shape();
        let n = rhs.cols();
        if out.shape() != (m, n) {
            return Err(ShapeError::new("matmul_into", (m, n), out.shape()));
        }
        out.as_mut_slice().fill(0.0);
        gemm::gemm(
            (m, n, k),
            self.as_slice(),
            Layout::RowMajor,
            rhs.as_slice(),
            Layout::RowMajor,
            out.as_mut_slice(),
        );
        Ok(())
    }

    /// Matrix product `self^T @ rhs` written into a caller-provided matrix.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `self.rows() != rhs.rows()` or `out` is
    /// not `self.cols() x rhs.cols()`.
    pub fn matmul_tn_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.rows() != rhs.rows() {
            return Err(ShapeError::new("matmul_tn_into", self.shape(), rhs.shape()));
        }
        let (k, m) = self.shape();
        let n = rhs.cols();
        if out.shape() != (m, n) {
            return Err(ShapeError::new("matmul_tn_into", (m, n), out.shape()));
        }
        out.as_mut_slice().fill(0.0);
        gemm::gemm(
            (m, n, k),
            self.as_slice(),
            Layout::Transposed,
            rhs.as_slice(),
            Layout::RowMajor,
            out.as_mut_slice(),
        );
        Ok(())
    }

    /// Accumulating form of [`Matrix::matmul_tn_into`]: `out += self^T @
    /// rhs`. The blocked driver natively accumulates into its output, so
    /// gradient contributions (e.g. a recurrent weight's per-step deltas)
    /// can be summed straight into the gradient buffer without a zeroed
    /// per-step temporary and a separate add pass.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `self.rows() != rhs.rows()` or `out` is
    /// not `self.cols() x rhs.cols()`.
    pub fn matmul_tn_acc(&self, rhs: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.rows() != rhs.rows() {
            return Err(ShapeError::new("matmul_tn_acc", self.shape(), rhs.shape()));
        }
        let (k, m) = self.shape();
        let n = rhs.cols();
        if out.shape() != (m, n) {
            return Err(ShapeError::new("matmul_tn_acc", (m, n), out.shape()));
        }
        gemm::gemm(
            (m, n, k),
            self.as_slice(),
            Layout::Transposed,
            rhs.as_slice(),
            Layout::RowMajor,
            out.as_mut_slice(),
        );
        Ok(())
    }

    /// Matrix product `self @ rhs^T` written into a caller-provided matrix.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `self.cols() != rhs.cols()` or `out` is
    /// not `self.rows() x rhs.rows()`.
    pub fn matmul_nt_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.cols() != rhs.cols() {
            return Err(ShapeError::new("matmul_nt_into", self.shape(), rhs.shape()));
        }
        let (m, k) = self.shape();
        let n = rhs.rows();
        if out.shape() != (m, n) {
            return Err(ShapeError::new("matmul_nt_into", (m, n), out.shape()));
        }
        out.as_mut_slice().fill(0.0);
        gemm::gemm(
            (m, n, k),
            self.as_slice(),
            Layout::RowMajor,
            rhs.as_slice(),
            Layout::Transposed,
            out.as_mut_slice(),
        );
        Ok(())
    }

    /// Matrix product `self^T @ rhs` without materialising the transpose.
    ///
    /// The transpose is absorbed by the pack stage of the blocked driver,
    /// so this accumulates in the same order as [`Matrix::matmul`] on an
    /// explicit transpose and produces bit-identical results.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `self.rows() != rhs.rows()`.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.rows() != rhs.rows() {
            return Err(ShapeError::new("matmul_tn", self.shape(), rhs.shape()));
        }
        let (k, m) = self.shape();
        let n = rhs.cols();
        let mut out = Matrix::zeros(m, n);
        gemm::gemm(
            (m, n, k),
            self.as_slice(),
            Layout::Transposed,
            rhs.as_slice(),
            Layout::RowMajor,
            out.as_mut_slice(),
        );
        Ok(out)
    }

    /// Matrix product `self @ rhs^T` without materialising the transpose.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `self.cols() != rhs.cols()`.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols() != rhs.cols() {
            return Err(ShapeError::new("matmul_nt", self.shape(), rhs.shape()));
        }
        let (m, k) = self.shape();
        let n = rhs.rows();
        let mut out = Matrix::zeros(m, n);
        gemm::gemm(
            (m, n, k),
            self.as_slice(),
            Layout::RowMajor,
            rhs.as_slice(),
            Layout::Transposed,
            out.as_mut_slice(),
        );
        Ok(out)
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let (r, c) = self.shape();
        let mut out = Matrix::zeros(c, r);
        for i in 0..r {
            for j in 0..c {
                out.set(j, i, self[(i, j)]);
            }
        }
        out
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with("add", rhs, |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with("sub", rhs, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes differ.
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with("hadamard", rhs, |a, b| a * b)
    }

    /// Applies `f` to every pair of elements.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes differ.
    pub fn zip_with<F>(&self, op: &'static str, rhs: &Matrix, f: F) -> Result<Matrix>
    where
        F: Fn(f32, f32) -> f32,
    {
        if self.shape() != rhs.shape() {
            return Err(ShapeError::new(op, self.shape(), rhs.shape()));
        }
        let data = self
            .as_slice()
            .iter()
            .zip(rhs.as_slice())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix::from_vec(self.rows(), self.cols(), data)
    }

    /// Adds `rhs` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, &b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a += b;
        }
    }

    /// Combines `rhs` into `self` in place with `f(self, rhs)`.
    ///
    /// The in-place counterpart of [`Matrix::zip_with`] used by the
    /// allocation-free backward pass.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_apply<F: Fn(f32, f32) -> f32>(&mut self, rhs: &Matrix, f: F) {
        assert_eq!(self.shape(), rhs.shape(), "zip_apply shape mismatch");
        for (a, &b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a = f(*a, b);
        }
    }

    /// Sums each column of `self` into the `1 x cols` matrix `out`,
    /// overwriting its contents.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not `1 x self.cols()`.
    pub fn sum_rows_into(&self, out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (1, self.cols()),
            "sum_rows_into shape mismatch"
        );
        out.as_mut_slice().fill(0.0);
        for r in 0..self.rows() {
            for (o, &v) in out.as_mut_slice().iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
    }

    /// Accumulating form of [`Matrix::sum_rows_into`]: adds each column
    /// sum of `self` into `out` instead of overwriting it.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not `1 x self.cols()`.
    pub fn sum_rows_acc(&self, out: &mut Matrix) {
        assert_eq!(out.shape(), (1, self.cols()), "sum_rows_acc shape mismatch");
        for r in 0..self.rows() {
            for (o, &v) in out.as_mut_slice().iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
    }

    /// Adds `scale * rhs` into `self` in place (AXPY).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, scale: f32, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, &b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a += scale * b;
        }
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Matrix {
        let data = self.as_slice().iter().map(|&x| f(x)).collect();
        Matrix::from_vec(self.rows(), self.cols(), data).expect("map preserves shape")
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for x in self.as_mut_slice() {
            *x = f(*x);
        }
    }

    /// Returns `self * scalar`.
    pub fn scale(&self, scalar: f32) -> Matrix {
        self.map(|x| x * scalar)
    }

    /// Adds the `1 x cols` row vector `bias` to every row.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `bias` is not `1 x self.cols()`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Result<Matrix> {
        if bias.rows() != 1 || bias.cols() != self.cols() {
            return Err(ShapeError::new(
                "add_row_broadcast",
                self.shape(),
                bias.shape(),
            ));
        }
        let mut out = self.clone();
        let b = bias.as_slice();
        let c = self.cols();
        for r in 0..out.rows() {
            for (v, &bv) in out.row_mut(r).iter_mut().zip(b) {
                *v += bv;
            }
        }
        debug_assert_eq!(out.cols(), c);
        Ok(out)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Sums each column, producing a `1 x cols` row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols());
        for r in 0..self.rows() {
            for (o, &v) in out.as_mut_slice().iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Sums each row, producing an `rows x 1` column vector.
    pub fn sum_cols(&self) -> Matrix {
        let data = (0..self.rows()).map(|r| self.row(r).iter().sum()).collect();
        Matrix::from_vec(self.rows(), 1, data).expect("shape preserved")
    }

    /// Mean of each row, producing an `rows x 1` column vector.
    pub fn mean_cols(&self) -> Matrix {
        let n = self.cols().max(1) as f32;
        self.sum_cols().scale(1.0 / n)
    }

    /// Largest element (or `f32::NEG_INFINITY` when empty).
    pub fn max(&self) -> f32 {
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Smallest element (or `f32::INFINITY` when empty).
    pub fn min(&self) -> f32 {
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min)
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.as_slice().iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Concatenates matrices horizontally (same row count).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the row counts differ or `parts` is empty.
    pub fn concat_cols(parts: &[&Matrix]) -> Result<Matrix> {
        let first = parts
            .first()
            .ok_or_else(|| ShapeError::new("concat_cols", (0, 0), (0, 0)))?;
        let rows = first.rows();
        let total: usize = parts.iter().map(|p| p.cols()).sum();
        for p in parts {
            if p.rows() != rows {
                return Err(ShapeError::new("concat_cols", first.shape(), p.shape()));
            }
        }
        let mut out = Matrix::zeros(rows, total);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                out.row_mut(r)[offset..offset + p.cols()].copy_from_slice(p.row(r));
                offset += p.cols();
            }
        }
        Ok(out)
    }

    /// Concatenates matrices vertically (same column count).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the column counts differ or `parts` is empty.
    pub fn concat_rows(parts: &[&Matrix]) -> Result<Matrix> {
        let first = parts
            .first()
            .ok_or_else(|| ShapeError::new("concat_rows", (0, 0), (0, 0)))?;
        let cols = first.cols();
        let total: usize = parts.iter().map(|p| p.rows()).sum();
        let mut data = Vec::with_capacity(total * cols);
        for p in parts {
            if p.cols() != cols {
                return Err(ShapeError::new("concat_rows", first.shape(), p.shape()));
            }
            data.extend_from_slice(p.as_slice());
        }
        Matrix::from_vec(total, cols, data)
    }

    /// Block-diagonal product used by the batched graph convolution.
    ///
    /// `self` is interpreted as a stack of `batch = rows / n` blocks of shape
    /// `n x cols`; block `b` is left-multiplied by `adjacency[b]` (each
    /// `n x n`). Equivalent to `blockdiag(adjacency) @ self` without forming
    /// the block-diagonal matrix.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `rows` is not `adjacency.len() * n` or any
    /// adjacency block is not `n x n`.
    pub fn block_left_matmul(&self, adjacency: &[Matrix], n: usize) -> Result<Matrix> {
        if n == 0 || self.rows() != adjacency.len() * n {
            return Err(ShapeError::new(
                "block_left_matmul",
                self.shape(),
                (adjacency.len() * n, n),
            ));
        }
        for a in adjacency {
            if a.shape() != (n, n) {
                return Err(ShapeError::new("block_left_matmul", a.shape(), (n, n)));
            }
        }
        let mut out = Matrix::zeros(self.rows(), self.cols());
        for (b, adj) in adjacency.iter().enumerate() {
            let block = self.slice_rows(b * n, (b + 1) * n);
            let prod = adj.matmul(&block)?;
            for i in 0..n {
                out.row_mut(b * n + i).copy_from_slice(prod.row(i));
            }
        }
        Ok(out)
    }

    /// Allocation-free form of [`Matrix::block_left_matmul`]: scratch comes
    /// from `pool` and the result is written into `out` (which must already
    /// be `self.rows() x self.cols()`). Adjacency blocks are borrowed, so
    /// callers can mix owned stacks and cached per-sample constants.
    ///
    /// Bit-identical to [`Matrix::block_left_matmul`]: both run the same
    /// per-block GEMM on zeroed output storage.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] under the same conditions as
    /// [`Matrix::block_left_matmul`], or when `out` has the wrong shape.
    pub fn block_left_matmul_into(
        &self,
        adjacency: &[impl std::borrow::Borrow<Matrix>],
        n: usize,
        pool: &mut crate::BufferPool,
        out: &mut Matrix,
    ) -> Result<()> {
        if n == 0 || self.rows() != adjacency.len() * n {
            return Err(ShapeError::new(
                "block_left_matmul_into",
                self.shape(),
                (adjacency.len() * n, n),
            ));
        }
        for a in adjacency {
            if a.borrow().shape() != (n, n) {
                return Err(ShapeError::new(
                    "block_left_matmul_into",
                    a.borrow().shape(),
                    (n, n),
                ));
            }
        }
        if out.shape() != self.shape() {
            return Err(ShapeError::new(
                "block_left_matmul_into",
                self.shape(),
                out.shape(),
            ));
        }
        let mut block = pool.take(n, self.cols());
        let mut prod = pool.take(n, self.cols());
        for (b, adj) in adjacency.iter().enumerate() {
            for i in 0..n {
                block.row_mut(i).copy_from_slice(self.row(b * n + i));
            }
            adj.borrow().matmul_into(&block, &mut prod)?;
            for i in 0..n {
                out.row_mut(b * n + i).copy_from_slice(prod.row(i));
            }
        }
        pool.put(block);
        pool.put(prod);
        Ok(())
    }

    /// Direct form of [`Matrix::block_left_matmul_into`] for small blocks:
    /// each output row accumulates densely over its adjacency row into a
    /// 16-lane register block, with no per-block GEMM dispatch, no pooled
    /// staging copies and no data-dependent branches (zero entries
    /// multiply through as exact `±0.0` terms). Blocks are fetched lazily
    /// via `adj_of`, so callers can stream per-sample adjacency without
    /// materialising a slice of borrows.
    ///
    /// Bit-identical to the GEMM form modulo the sign of zero: per output
    /// element the accumulation runs over the full `k` range in ascending
    /// order from `0.0`, with the same fused/unfused multiply-add as the
    /// blocked micro-kernel — the exact register chain the micro-kernel
    /// executes for a `k x n` panel.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `rows != blocks * n`, any fetched block is
    /// not `n x n`, or `out` is not the shape of `self`.
    pub fn block_left_matmul_each_into<'a>(
        &self,
        blocks: usize,
        n: usize,
        adj_of: impl Fn(usize) -> &'a Matrix,
        out: &mut Matrix,
    ) -> Result<()> {
        if n == 0 || self.rows() != blocks * n {
            return Err(ShapeError::new(
                "block_left_matmul_each_into",
                self.shape(),
                (blocks * n, n),
            ));
        }
        if out.shape() != self.shape() {
            return Err(ShapeError::new(
                "block_left_matmul_each_into",
                self.shape(),
                out.shape(),
            ));
        }
        for b in 0..blocks {
            let adj = adj_of(b);
            if adj.shape() != (n, n) {
                return Err(ShapeError::new(
                    "block_left_matmul_each_into",
                    adj.shape(),
                    (n, n),
                ));
            }
            let base = b * n;
            let cols = self.cols();
            if n <= 12 {
                // Small-block fast path (the graph-encoder shape: <= 12
                // nodes per cell DAG). Each 16-lane column stripe of the
                // block's input rows is staged once into a fixed-size
                // stack tile, so the adjacency chain below reads pure
                // stack with no slice re-derivation per term; `zip`
                // truncates the tile to `n` rows.
                let mut tile = [[0.0f32; 16]; 12];
                let mut c0 = 0;
                while c0 + 16 <= cols {
                    for (dst, j) in tile.iter_mut().zip(0..n) {
                        dst.copy_from_slice(&self.row(base + j)[c0..c0 + 16]);
                    }
                    for i in 0..n {
                        let arow = adj.row(i);
                        let mut acc = [0.0f32; 16];
                        for (xrow, &a) in tile.iter().zip(arow) {
                            for (al, &xi) in acc.iter_mut().zip(xrow) {
                                *al = madd(a, xi, *al);
                            }
                        }
                        out.row_mut(base + i)[c0..c0 + 16].copy_from_slice(&acc);
                    }
                    c0 += 16;
                }
                if c0 < cols {
                    let w = cols - c0;
                    if w <= 2 {
                        // one- or two-column tail (the one-hot feature
                        // width leaves exactly one): a staged-column
                        // matvec per live column is far cheaper than
                        // running the 16-lane kernel for it; the chain
                        // (`j` ascending from zero, fused where the
                        // kernel fuses) is unchanged
                        for l in c0..cols {
                            let mut colv = [0.0f32; 12];
                            for (dst, j) in colv.iter_mut().zip(0..n) {
                                *dst = self.row(base + j)[l];
                            }
                            for i in 0..n {
                                let mut acc = 0.0f32;
                                for (&a, &xv) in adj.row(i).iter().zip(&colv[..n]) {
                                    acc = madd(a, xv, acc);
                                }
                                out.row_mut(base + i)[l] = acc;
                            }
                        }
                        continue;
                    }
                    for (dst, j) in tile.iter_mut().zip(0..n) {
                        dst[..w].copy_from_slice(&self.row(base + j)[c0..]);
                    }
                    for i in 0..n {
                        let arow = adj.row(i);
                        // full 16-lane compute, first `w` lanes written
                        // back: the live lanes see the exact same chain
                        // as the full-stripe loop, the rest (stale tile
                        // columns) are discarded — keeps the tail on the
                        // vector kernel instead of a scalar epilogue
                        let mut acc = [0.0f32; 16];
                        for (xrow, &a) in tile.iter().zip(arow) {
                            for (al, &xi) in acc.iter_mut().zip(xrow) {
                                *al = madd(a, xi, *al);
                            }
                        }
                        out.row_mut(base + i)[c0..].copy_from_slice(&acc[..w]);
                    }
                }
                continue;
            }
            for i in 0..n {
                let arow = adj.row(i);
                // 16 f32 = one AVX-512 register: the accumulator chunk
                // stays live across the whole adjacency-row chain. The
                // full-width case uses a const-length array so the lane
                // loop compiles to a single fused multiply-add.
                let mut c0 = 0;
                while c0 + 16 <= cols {
                    let mut acc = [0.0f32; 16];
                    for (j, &a) in arow.iter().enumerate() {
                        let src: &[f32; 16] = self.row(base + j)[c0..c0 + 16]
                            .try_into()
                            .expect("slice is 16 wide");
                        for (al, &xi) in acc.iter_mut().zip(src) {
                            *al = madd(a, xi, *al);
                        }
                    }
                    out.row_mut(base + i)[c0..c0 + 16].copy_from_slice(&acc);
                    c0 += 16;
                }
                if c0 < cols {
                    let w = cols - c0;
                    let mut acc = [0.0f32; 16];
                    for (j, &a) in arow.iter().enumerate() {
                        let src = &self.row(base + j)[c0..];
                        for (al, &xi) in acc[..w].iter_mut().zip(src) {
                            *al = madd(a, xi, *al);
                        }
                    }
                    out.row_mut(base + i)[c0..].copy_from_slice(&acc[..w]);
                }
            }
        }
        Ok(())
    }
}

impl Matrix {
    /// Single-output-row form of
    /// [`Matrix::block_left_matmul_each_into`]: per block `b`, aggregates
    /// only adjacency row `adj_row_of(b)` over the block's `n` input rows,
    /// writing one row of `out` (`[blocks, cols]`). The frozen GCN uses
    /// this for the **last** layer, whose output is read at exactly one
    /// node per sample (the global readout node) — aggregating the other
    /// `n - 1` rows there is dead work.
    ///
    /// Per output element the accumulation is the identical chain the full
    /// block kernel runs for that row (`j` ascending from `0.0`, 16-lane
    /// stripes, same fused/unfused multiply-add), so the produced row is
    /// bit-identical to the corresponding row of the full aggregation.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `rows != blocks * n`, any fetched
    /// adjacency row is not `n` long, or `out` is not `[blocks, cols]`.
    pub fn block_left_matmul_row_each_into<'a>(
        &self,
        blocks: usize,
        n: usize,
        adj_row_of: impl Fn(usize) -> &'a [f32],
        out: &mut Matrix,
    ) -> Result<()> {
        if n == 0 || self.rows() != blocks * n {
            return Err(ShapeError::new(
                "block_left_matmul_row_each_into",
                self.shape(),
                (blocks * n, n),
            ));
        }
        if out.shape() != (blocks, self.cols()) {
            return Err(ShapeError::new(
                "block_left_matmul_row_each_into",
                (blocks, self.cols()),
                out.shape(),
            ));
        }
        let cols = self.cols();
        for b in 0..blocks {
            let arow = adj_row_of(b);
            if arow.len() != n {
                return Err(ShapeError::new(
                    "block_left_matmul_row_each_into",
                    (1, n),
                    (1, arow.len()),
                ));
            }
            let base = b * n;
            let mut c0 = 0;
            while c0 + 16 <= cols {
                let mut acc = [0.0f32; 16];
                for (j, &a) in arow.iter().enumerate() {
                    let src: &[f32; 16] = self.row(base + j)[c0..c0 + 16]
                        .try_into()
                        .expect("slice is 16 wide");
                    for (al, &xi) in acc.iter_mut().zip(src) {
                        *al = madd(a, xi, *al);
                    }
                }
                out.row_mut(b)[c0..c0 + 16].copy_from_slice(&acc);
                c0 += 16;
            }
            if c0 < cols {
                let w = cols - c0;
                let mut acc = [0.0f32; 16];
                for (j, &a) in arow.iter().enumerate() {
                    let src = &self.row(base + j)[c0..];
                    for (al, &xi) in acc[..w].iter_mut().zip(src) {
                        *al = madd(a, xi, *al);
                    }
                }
                out.row_mut(b)[c0..].copy_from_slice(&acc[..w]);
            }
        }
        Ok(())
    }
}

/// One multiply-add term, rounded exactly like the blocked micro-kernel:
/// fused on AVX-512F targets, separate multiply and add elsewhere.
#[inline(always)]
fn madd(a: f32, x: f32, acc: f32) -> f32 {
    #[cfg(target_feature = "avx512f")]
    {
        a.mul_add(x, acc)
    }
    #[cfg(not(target_feature = "avx512f"))]
    {
        acc + a * x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let err = a.matmul(&b).unwrap_err();
        assert_eq!(err.op(), "matmul");
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let expected = a.transpose().matmul(&b).unwrap();
        assert_eq!(a.matmul_tn(&b).unwrap(), expected);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0], &[9.0, 10.0]]);
        let expected = a.matmul(&b.transpose()).unwrap();
        assert_eq!(a.matmul_nt(&b).unwrap(), expected);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b).unwrap(), Matrix::from_rows(&[&[4.0, 6.0]]));
        assert_eq!(b.sub(&a).unwrap(), Matrix::from_rows(&[&[2.0, 2.0]]));
        assert_eq!(a.hadamard(&b).unwrap(), Matrix::from_rows(&[&[3.0, 8.0]]));
        assert!(a.add(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn broadcast_and_reductions() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let bias = Matrix::row_vector(&[10.0, 20.0]);
        let out = m.add_row_broadcast(&bias).unwrap();
        assert_eq!(out, Matrix::from_rows(&[&[11.0, 22.0], &[13.0, 24.0]]));
        assert_eq!(m.sum(), 10.0);
        assert_eq!(m.mean(), 2.5);
        assert_eq!(m.sum_rows(), Matrix::row_vector(&[4.0, 6.0]));
        assert_eq!(m.sum_cols(), Matrix::col_vector(&[3.0, 7.0]));
        assert_eq!(m.mean_cols(), Matrix::col_vector(&[1.5, 3.5]));
        assert_eq!(m.max(), 4.0);
        assert_eq!(m.min(), 1.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::ones(1, 2);
        let b = Matrix::from_rows(&[&[2.0, 4.0]]);
        a.axpy(0.5, &b);
        assert_eq!(a, Matrix::from_rows(&[&[2.0, 3.0]]));
    }

    #[test]
    fn concat_cols_and_rows() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let h = Matrix::concat_cols(&[&a, &b]).unwrap();
        assert_eq!(h, Matrix::from_rows(&[&[1.0, 3.0, 4.0], &[2.0, 5.0, 6.0]]));
        let v = Matrix::concat_rows(&[&a, &a]).unwrap();
        assert_eq!(v.rows(), 4);
        assert!(Matrix::concat_cols(&[]).is_err());
        assert!(Matrix::concat_rows(&[&a, &b]).is_err());
    }

    #[test]
    fn block_left_matmul_matches_per_block() {
        let adj0 = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let adj1 = Matrix::identity(2);
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 8.0]]);
        let out = x.block_left_matmul(&[adj0.clone(), adj1], 2).unwrap();
        // first block swapped, second unchanged
        assert_eq!(out.row(0), &[3.0, 4.0]);
        assert_eq!(out.row(1), &[1.0, 2.0]);
        assert_eq!(out.row(2), &[5.0, 6.0]);
        assert_eq!(out.row(3), &[7.0, 8.0]);
        assert!(x.block_left_matmul(&[adj0], 2).is_err());
    }

    #[test]
    fn block_left_matmul_each_into_is_bit_identical() {
        // sparse-ish adjacency (about half zeros, like NB201 DAGs), dirty
        // output buffer, several blocks
        let n = 8;
        let blocks = 5;
        let cols = 16;
        let x = Matrix::from_vec(
            blocks * n,
            cols,
            (0..blocks * n * cols)
                .map(|i| ((i * 29 % 23) as f32 - 11.0) * 0.13)
                .collect(),
        )
        .unwrap();
        let adjs: Vec<Matrix> = (0..blocks)
            .map(|b| {
                Matrix::from_vec(
                    n,
                    n,
                    (0..n * n)
                        .map(|i| {
                            if (i * 7 + b) % 2 == 0 {
                                0.0
                            } else {
                                ((i + b) % 5) as f32 * 0.5
                            }
                        })
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        let expect = x.block_left_matmul(&adjs, n).unwrap();
        let mut out = Matrix::from_vec(blocks * n, cols, vec![9.0; blocks * n * cols]).unwrap();
        x.block_left_matmul_each_into(blocks, n, |b| &adjs[b], &mut out)
            .unwrap();
        assert_eq!(out.as_slice(), expect.as_slice());
        // shape errors
        assert!(x
            .block_left_matmul_each_into(blocks + 1, n, |_| &adjs[0], &mut out)
            .is_err());
        let mut bad = Matrix::zeros(1, 1);
        assert!(x
            .block_left_matmul_each_into(blocks, n, |b| &adjs[b], &mut bad)
            .is_err());
    }

    #[test]
    fn block_left_matmul_into_is_bit_identical() {
        let adj0 = Matrix::from_rows(&[&[0.3, 1.1], &[0.7, 0.2]]);
        let adj1 = Matrix::from_rows(&[&[1.0, 0.4], &[0.0, 0.9]]);
        let x = Matrix::from_rows(&[&[1.5, 2.0], &[3.0, 4.5], &[5.0, 6.5], &[7.5, 8.0]]);
        let expected = x
            .block_left_matmul(&[adj0.clone(), adj1.clone()], 2)
            .unwrap();
        let mut pool = crate::BufferPool::new();
        let mut out = Matrix::zeros(4, 2);
        x.block_left_matmul_into(&[&adj0, &adj1], 2, &mut pool, &mut out)
            .unwrap();
        assert_eq!(out.as_slice(), expected.as_slice());
        // shape errors mirror the allocating form
        assert!(x
            .block_left_matmul_into(&[&adj0], 2, &mut pool, &mut out)
            .is_err());
        let mut bad = Matrix::zeros(2, 2);
        assert!(x
            .block_left_matmul_into(&[&adj0, &adj1], 2, &mut pool, &mut bad)
            .is_err());
    }

    #[test]
    fn norm_known_value() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((m.norm() - 5.0).abs() < 1e-6);
    }
}
