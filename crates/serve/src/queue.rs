//! The admission queue and its adaptive micro-batching policy, plus the
//! worker loop that drains it into the frozen engine.
//!
//! # Micro-batch deadline math
//!
//! The first waiting request (the *leader*) opens a coalesce window: the
//! queue releases a batch as soon as `max_batch` rows compatible with
//! the leader are waiting, or when `leader.arrived + batch_deadline`
//! passes — whichever comes first. The deadline therefore bounds the
//! latency a lone request can pay for the throughput of a full batch:
//! worst-case added latency is exactly `batch_deadline`, while under
//! load the window fills long before it expires and adds ~0. A deadline
//! of `0` disables coalescing delay entirely (the uncoalesced baseline
//! the `serving_throughput` bench compares against).
//!
//! Compatibility is `Arc` identity of the served model plus the latency
//! head slot and prediction kind — so requests split across a hot-swap
//! never share a forward, and a batch's rows all come from one engine.
//!
//! Requests are shed with an explicit `Overloaded` reply in two places:
//! at admission when the queue already holds `queue_cap` requests, and
//! at execution when a request sat queued longer than `request_timeout`.
//!
//! The queue recycles request buffers (`Vec<Architecture>`) through an
//! internal pool, and [`WorkerState`] owns its arena and output/frame
//! buffers, so the warm path — admit, coalesce, forward, reply — does
//! zero heap allocations (pinned by the `alloc-count` harness).

use crate::config::ServeConfig;
use crate::protocol::{self, PredictKind, STATUS_ERROR, STATUS_OVERLOADED};
use crate::registry::ServedModel;
use crate::telemetry::metrics;
use hwpr_core::InferArena;
use hwpr_nasbench::Architecture;
use hwpr_obs::SpanContext;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Where a request's reply frame goes. Abstracted over the transport so
/// the worker loop is testable (and provable allocation-free) without
/// sockets; the TCP implementation lives in the server module.
pub trait ReplySink: Send + Sync {
    /// Delivers one complete response frame. Must not panic; transport
    /// failures are the sink's to swallow (warn + drop).
    fn send(&self, frame: &[u8]);
}

/// One admitted request waiting for a worker.
pub struct Pending {
    /// Client-chosen id echoed in the reply.
    pub request_id: u64,
    /// Which prediction to run.
    pub kind: PredictKind,
    /// The resolved model (pinned: a hot-swap does not retarget this).
    pub model: Arc<ServedModel>,
    /// Latency-head slot resolved at admission.
    pub slot: usize,
    /// The architecture batch (buffer owned by the queue's pool).
    pub archs: Vec<Architecture>,
    /// Reply transport.
    pub reply: Arc<dyn ReplySink>,
    /// Admission timestamp (drives the coalesce deadline, the request
    /// timeout and the latency histogram).
    pub arrived: Instant,
}

impl std::fmt::Debug for Pending {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pending")
            .field("request_id", &self.request_id)
            .field("kind", &self.kind)
            .field("model", &self.model.name())
            .field("slot", &self.slot)
            .field("rows", &self.archs.len())
            .finish()
    }
}

#[derive(Default)]
struct QueueInner {
    pending: VecDeque<Pending>,
    arch_pool: Vec<Vec<Architecture>>,
    shutdown: bool,
}

/// The bounded admission queue with micro-batch coalescing.
pub struct BatchQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    queue_cap: usize,
    max_batch: usize,
    deadline: Duration,
}

impl std::fmt::Debug for BatchQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchQueue")
            .field("queue_cap", &self.queue_cap)
            .field("max_batch", &self.max_batch)
            .field("deadline", &self.deadline)
            .finish()
    }
}

impl BatchQueue {
    /// A queue with `config`'s capacity, coalesce target and deadline.
    pub fn new(config: &ServeConfig) -> Self {
        Self {
            inner: Mutex::new(QueueInner::default()),
            ready: Condvar::new(),
            queue_cap: config.queue_cap.max(1),
            max_batch: config.max_batch.max(1),
            deadline: config.batch_deadline,
        }
    }

    /// Takes a pooled architecture buffer (empty, capacity retained).
    pub fn take_arch_buf(&self) -> Vec<Architecture> {
        self.inner
            .lock()
            .expect("queue lock")
            .arch_pool
            .pop()
            .unwrap_or_default()
    }

    /// Returns an architecture buffer to the pool.
    pub fn recycle_arch_buf(&self, mut buf: Vec<Architecture>) {
        buf.clear();
        self.inner.lock().expect("queue lock").arch_pool.push(buf);
    }

    /// Admits a request. On a full queue the request comes back as
    /// `Err` — the caller sheds it with an `Overloaded` reply.
    #[allow(clippy::result_large_err)]
    pub fn push(&self, pending: Pending) -> Result<(), Pending> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.shutdown || inner.pending.len() >= self.queue_cap {
            return Err(pending);
        }
        let rows = pending.archs.len() as i64;
        inner.pending.push_back(pending);
        let depth = inner.pending.len();
        drop(inner);
        self.ready.notify_one();
        if hwpr_obs::enabled() {
            let m = metrics();
            m.requests.inc();
            m.queue_depth.set(depth as f64);
            m.inflight_add(rows);
        }
        Ok(())
    }

    /// Marks the queue shut down and wakes every waiting worker.
    pub fn shutdown(&self) {
        self.inner.lock().expect("queue lock").shutdown = true;
        self.ready.notify_all();
    }

    /// Rows in the queue compatible with `leader` (including itself).
    fn compatible_rows(pending: &VecDeque<Pending>, leader: &Pending) -> usize {
        pending
            .iter()
            .filter(|p| Self::compatible(p, leader))
            .map(|p| p.archs.len())
            .sum()
    }

    fn compatible(a: &Pending, b: &Pending) -> bool {
        Arc::ptr_eq(&a.model, &b.model) && a.slot == b.slot && a.kind == b.kind
    }

    /// Blocks until a batch is ready (or the queue shuts down), then
    /// moves the leader and every compatible follower — up to the
    /// coalesce target — into `out`. Returns `false` on shutdown.
    pub fn next_batch(&self, out: &mut Vec<Pending>) -> bool {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if inner.shutdown {
                return false;
            }
            if inner.pending.is_empty() {
                inner = self.ready.wait(inner).expect("queue lock");
                continue;
            }
            // a leader is waiting: hold its coalesce window open until
            // the target fills or the deadline passes
            let deadline = inner.pending[0].arrived + self.deadline;
            loop {
                if inner.shutdown {
                    return false;
                }
                let Some(leader) = inner.pending.front() else {
                    break; // another worker drained the queue
                };
                if Self::compatible_rows(&inner.pending, leader) >= self.max_batch {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = self
                    .ready
                    .wait_timeout(inner, deadline - now)
                    .expect("queue lock");
                inner = guard;
            }
            if self.extract(&mut inner, out) {
                return true;
            }
        }
    }

    /// Non-blocking variant of [`Self::next_batch`]: collects whatever
    /// is already waiting without honouring the deadline. Returns
    /// `false` when the queue is empty. Test and drain harnesses use
    /// this; the server workers use the blocking form.
    pub fn try_next_batch(&self, out: &mut Vec<Pending>) -> bool {
        let mut inner = self.inner.lock().expect("queue lock");
        self.extract(&mut inner, out)
    }

    /// Moves the leader + compatible followers into `out`; `false` when
    /// nothing is pending.
    fn extract(&self, inner: &mut QueueInner, out: &mut Vec<Pending>) -> bool {
        out.clear();
        let Some(leader) = inner.pending.pop_front() else {
            return false;
        };
        let mut rows = leader.archs.len();
        out.push(leader);
        let mut i = 0;
        while i < inner.pending.len() && rows < self.max_batch {
            if Self::compatible(&inner.pending[i], &out[0]) {
                let follower = inner.pending.remove(i).expect("index in range");
                rows += follower.archs.len();
                out.push(follower);
            } else {
                i += 1;
            }
        }
        if hwpr_obs::enabled() {
            metrics().queue_depth.set(inner.pending.len() as f64);
        }
        true
    }
}

/// One prediction worker's reusable state: an engine-independent arena,
/// the coalesced batch staging, output columns and the reply frame.
pub struct WorkerState {
    arena: InferArena,
    batch: Vec<Pending>,
    archs: Vec<Architecture>,
    scores: Vec<f64>,
    objectives: Vec<(f64, f64)>,
    frame: Vec<u8>,
    parent: SpanContext,
    request_timeout: Duration,
}

impl std::fmt::Debug for WorkerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerState")
            .field("request_timeout", &self.request_timeout)
            .finish()
    }
}

impl WorkerState {
    /// A fresh worker. `parent` is the server's root span context so
    /// batch spans land in the serving trace.
    pub fn new(config: &ServeConfig, parent: SpanContext) -> Self {
        Self {
            arena: InferArena::default(),
            batch: Vec::new(),
            archs: Vec::new(),
            scores: Vec::new(),
            objectives: Vec::new(),
            frame: Vec::new(),
            parent,
            request_timeout: config.request_timeout,
        }
    }

    /// Blocks for the next batch and serves it. Returns `false` once the
    /// queue shuts down.
    pub fn run_once(&mut self, queue: &BatchQueue) -> bool {
        // move the batch out of self so `execute` can borrow freely
        let mut batch = std::mem::take(&mut self.batch);
        if !queue.next_batch(&mut batch) {
            self.batch = batch;
            return false;
        }
        self.execute(queue, &mut batch);
        self.batch = batch;
        true
    }

    /// Serves whatever is already queued without waiting. Returns
    /// `false` when the queue was empty.
    pub fn try_run_once(&mut self, queue: &BatchQueue) -> bool {
        let mut batch = std::mem::take(&mut self.batch);
        if !queue.try_next_batch(&mut batch) {
            self.batch = batch;
            return false;
        }
        self.execute(queue, &mut batch);
        self.batch = batch;
        true
    }

    /// Runs one coalesced forward and replies to every request in
    /// `batch`, recycling the request buffers into `queue`'s pool.
    fn execute(&mut self, queue: &BatchQueue, batch: &mut Vec<Pending>) {
        let telemetry = hwpr_obs::enabled();
        // shed requests that aged out while queued
        let mut i = 0;
        while i < batch.len() {
            if batch[i].arrived.elapsed() > self.request_timeout {
                let shed = batch.swap_remove(i);
                protocol::encode_error_response(
                    &mut self.frame,
                    shed.request_id,
                    STATUS_OVERLOADED,
                    "request timed out in the admission queue",
                );
                shed.reply.send(&self.frame);
                if telemetry {
                    let m = metrics();
                    m.overloaded.inc();
                    m.inflight_add(-(shed.archs.len() as i64));
                }
                queue.recycle_arch_buf(shed.archs);
            } else {
                i += 1;
            }
        }
        if batch.is_empty() {
            return;
        }
        let _span = hwpr_obs::span_with_parent("serve.batch", self.parent);
        let started = if telemetry {
            Some(Instant::now())
        } else {
            None
        };
        // stage the coalesced rows in request order
        self.archs.clear();
        for p in batch.iter() {
            self.archs.extend_from_slice(&p.archs);
        }
        let model = &batch[0].model;
        let kind = batch[0].kind;
        let slot = batch[0].slot;
        let result = match kind {
            PredictKind::Scores => {
                self.scores.clear();
                model.frozen().predict_scores_into_with(
                    model.cache(),
                    &self.archs,
                    slot,
                    &mut self.scores,
                    &mut self.arena,
                )
            }
            PredictKind::Objectives => {
                self.objectives.clear();
                model.frozen().predict_objectives_into_with(
                    model.cache(),
                    &self.archs,
                    slot,
                    &mut self.objectives,
                    &mut self.arena,
                )
            }
        };
        let rows_served = self.archs.len();
        match result {
            Ok(()) => {
                // split the output columns back per request, in order
                let mut offset = 0;
                for p in batch.iter() {
                    let rows = p.archs.len();
                    match kind {
                        PredictKind::Scores => protocol::encode_scores_response(
                            &mut self.frame,
                            p.request_id,
                            &self.scores[offset..offset + rows],
                        ),
                        PredictKind::Objectives => protocol::encode_objectives_response(
                            &mut self.frame,
                            p.request_id,
                            &self.objectives[offset..offset + rows],
                        ),
                    }
                    offset += rows;
                    p.reply.send(&self.frame);
                }
            }
            Err(ref e) => {
                // slot was validated at admission, so this is a genuine
                // engine failure: every rider gets the error, the worker
                // survives
                for p in batch.iter() {
                    protocol::encode_error_response(
                        &mut self.frame,
                        p.request_id,
                        STATUS_ERROR,
                        &format!("prediction failed: {e}"),
                    );
                    p.reply.send(&self.frame);
                }
                if telemetry {
                    metrics().errors.add(batch.len() as u64);
                }
            }
        }
        if let Some(start) = started {
            let m = metrics();
            m.batches.inc();
            m.batch_rows.observe(rows_served as f64);
            m.batch_us.observe(start.elapsed().as_secs_f64() * 1e6);
            for p in batch.iter() {
                m.request_us
                    .observe(p.arrived.elapsed().as_secs_f64() * 1e6);
            }
            m.inflight_add(-(rows_served as i64));
        }
        for mut p in batch.drain(..) {
            queue.recycle_arch_buf(std::mem::take(&mut p.archs));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PlMutex;

    struct CountingSink {
        frames: PlMutex<Vec<Vec<u8>>>,
    }

    impl CountingSink {
        fn new() -> Arc<Self> {
            Arc::new(Self {
                frames: PlMutex::new(Vec::new()),
            })
        }
    }

    impl ReplySink for CountingSink {
        fn send(&self, frame: &[u8]) {
            self.frames.lock().push(frame.to_vec());
        }
    }

    fn tiny_served() -> Arc<ServedModel> {
        use hwpr_core::{HwPrNas, ModelConfig, SurrogateDataset, TrainConfig};
        use hwpr_hwmodel::{Platform, SimBench, SimBenchConfig};
        use hwpr_nasbench::{Dataset, SearchSpaceId};
        let bench = SimBench::generate(SimBenchConfig {
            space: SearchSpaceId::NasBench201,
            sample_size: Some(24),
            seed: 5,
        });
        let data =
            SurrogateDataset::from_simbench(&bench, Dataset::Cifar10, Platform::EdgeGpu).unwrap();
        let (model, _) = HwPrNas::fit(&data, &ModelConfig::tiny(), &TrainConfig::tiny()).unwrap();
        let registry = crate::ModelRegistry::new();
        registry.publish("m", Arc::new(model));
        registry.get("m").unwrap()
    }

    fn pending(
        model: &Arc<ServedModel>,
        queue: &BatchQueue,
        sink: &Arc<CountingSink>,
        id: u64,
        n: usize,
    ) -> Pending {
        let mut archs = queue.take_arch_buf();
        for i in 0..n {
            archs.push(hwpr_nasbench::Architecture::nb201_from_index(id * 100 + i as u64).unwrap());
        }
        Pending {
            request_id: id,
            kind: PredictKind::Scores,
            model: Arc::clone(model),
            slot: 0,
            archs,
            reply: Arc::clone(sink) as Arc<dyn ReplySink>,
            arrived: Instant::now(),
        }
    }

    #[test]
    fn full_queue_sheds_and_batches_coalesce_to_the_target() {
        let model = tiny_served();
        let sink = CountingSink::new();
        let config = ServeConfig {
            max_batch: 8,
            batch_deadline: Duration::ZERO,
            queue_cap: 2,
            ..ServeConfig::default()
        };
        let queue = BatchQueue::new(&config);
        assert!(queue.push(pending(&model, &queue, &sink, 1, 3)).is_ok());
        assert!(queue.push(pending(&model, &queue, &sink, 2, 3)).is_ok());
        // cap reached: the third admission is bounced back
        assert!(queue.push(pending(&model, &queue, &sink, 3, 3)).is_err());

        let mut worker = WorkerState::new(&config, SpanContext::NONE);
        assert!(worker.try_run_once(&queue));
        // both compatible requests rode one batch: two reply frames
        assert_eq!(sink.frames.lock().len(), 2);
        assert!(!worker.try_run_once(&queue), "queue must be drained");
    }

    #[test]
    fn timed_out_requests_get_an_overloaded_reply() {
        let model = tiny_served();
        let sink = CountingSink::new();
        let config = ServeConfig {
            max_batch: 8,
            batch_deadline: Duration::ZERO,
            request_timeout: Duration::ZERO,
            ..ServeConfig::default()
        };
        let queue = BatchQueue::new(&config);
        queue.push(pending(&model, &queue, &sink, 1, 2)).unwrap();
        let mut worker = WorkerState::new(&config, SpanContext::NONE);
        assert!(worker.try_run_once(&queue));
        let frames = sink.frames.lock();
        assert_eq!(frames.len(), 1);
        let head = protocol::decode_response_head(&frames[0][4..]).unwrap();
        assert_eq!(head.status, STATUS_OVERLOADED);
        assert_eq!(head.request_id, 1);
    }

    #[test]
    fn shutdown_unblocks_next_batch() {
        let config = ServeConfig::default();
        let queue = Arc::new(BatchQueue::new(&config));
        let q = Arc::clone(&queue);
        let waiter = std::thread::spawn(move || {
            let mut out = Vec::new();
            q.next_batch(&mut out)
        });
        std::thread::sleep(Duration::from_millis(20));
        queue.shutdown();
        assert!(!waiter.join().unwrap(), "shutdown must return false");
        // pushes after shutdown bounce
        let model = tiny_served();
        let sink = CountingSink::new();
        assert!(queue.push(pending(&model, &queue, &sink, 1, 1)).is_err());
    }
}
