//! The boosting loop over regression trees.

use crate::binning::FeatureBins;
use crate::tree::{RegressionTree, TreeConfig};
use crate::{GbdtError, Result};
use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Tree-growth strategy, the key structural difference between the two
/// boosted baselines in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GrowthStrategy {
    /// Grow every leaf down to `max_depth` (XGBoost-style).
    LevelWise {
        /// Maximum tree depth.
        max_depth: usize,
    },
    /// Repeatedly split the highest-gain leaf until `max_leaves`
    /// (LightGBM-style best-first growth).
    LeafWise {
        /// Maximum number of leaves.
        max_leaves: usize,
    },
}

/// Configuration of a boosted ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct GbdtConfig {
    /// Number of boosting rounds (trees).
    pub n_trees: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f32,
    /// Fraction of rows sampled per tree (`(0, 1]`).
    pub subsample: f32,
    /// Histogram bins per feature.
    pub max_bins: usize,
    /// Per-tree hyperparameters.
    pub tree: TreeConfig,
    /// Seed for row subsampling.
    pub seed: u64,
}

impl GbdtConfig {
    /// XGBoost-flavoured preset: 150 level-wise trees of depth 6.
    pub fn xgboost_preset(seed: u64) -> Self {
        Self {
            n_trees: 150,
            learning_rate: 0.1,
            subsample: 0.9,
            max_bins: 32,
            tree: TreeConfig {
                growth: GrowthStrategy::LevelWise { max_depth: 6 },
                lambda: 1.0,
                min_gain: 0.0,
                min_samples_leaf: 2,
            },
            seed,
        }
    }

    /// LightGBM-flavoured preset: 150 leaf-wise trees of up to 31 leaves.
    pub fn lgboost_preset(seed: u64) -> Self {
        Self {
            n_trees: 150,
            learning_rate: 0.1,
            subsample: 0.9,
            max_bins: 32,
            tree: TreeConfig {
                growth: GrowthStrategy::LeafWise { max_leaves: 31 },
                lambda: 1.0,
                min_gain: 0.0,
                min_samples_leaf: 2,
            },
            seed,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.n_trees == 0 {
            return Err(GbdtError::InvalidConfig("n_trees must be positive".into()));
        }
        if !(0.0 < self.subsample && self.subsample <= 1.0) {
            return Err(GbdtError::InvalidConfig(format!(
                "subsample must be in (0, 1], got {}",
                self.subsample
            )));
        }
        if self.max_bins < 2 {
            return Err(GbdtError::InvalidConfig("max_bins must be >= 2".into()));
        }
        if !self.learning_rate.is_finite() || self.learning_rate <= 0.0 {
            return Err(GbdtError::InvalidConfig(
                "learning_rate must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// A trained gradient-boosted ensemble for scalar regression.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gbdt {
    base_score: f32,
    learning_rate: f32,
    trees: Vec<RegressionTree>,
    feature_gain: Vec<f64>,
}

impl Gbdt {
    /// Fits an ensemble to `(rows, targets)` with squared loss.
    ///
    /// # Errors
    ///
    /// Returns [`GbdtError`] for empty/mismatched data or invalid config.
    pub fn fit(rows: &[Vec<f32>], targets: &[f32], config: &GbdtConfig) -> Result<Self> {
        config.validate()?;
        if rows.is_empty() {
            return Err(GbdtError::InvalidDataset("no training rows".into()));
        }
        if rows.len() != targets.len() {
            return Err(GbdtError::InvalidDataset(format!(
                "{} rows but {} targets",
                rows.len(),
                targets.len()
            )));
        }
        let dim = rows[0].len();
        if rows.iter().any(|r| r.len() != dim) {
            return Err(GbdtError::InvalidDataset("ragged feature rows".into()));
        }

        let bins = FeatureBins::from_rows(rows, config.max_bins);
        let base_score = targets.iter().sum::<f32>() / targets.len() as f32;
        let mut predictions = vec![base_score; rows.len()];
        let mut trees = Vec::with_capacity(config.n_trees);
        let mut feature_gain = vec![0.0f64; dim];
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let hess = vec![1.0f32; rows.len()];

        for _ in 0..config.n_trees {
            // squared loss: gradient = prediction - target
            let grad: Vec<f32> = predictions
                .iter()
                .zip(targets)
                .map(|(&p, &t)| p - t)
                .collect();
            let mut sample: Vec<usize> = (0..rows.len()).collect();
            if config.subsample < 1.0 {
                sample.shuffle(&mut rng);
                let keep = ((rows.len() as f32 * config.subsample) as usize).max(1);
                sample.truncate(keep);
            }
            let tree = RegressionTree::fit(rows, &grad, &hess, &sample, &bins, &config.tree);
            for (fg, &g) in feature_gain.iter_mut().zip(tree.feature_gain()) {
                *fg += g;
            }
            for (p, row) in predictions.iter_mut().zip(rows) {
                *p += config.learning_rate * tree.predict(row);
            }
            trees.push(tree);
        }
        Ok(Self {
            base_score,
            learning_rate: config.learning_rate,
            trees,
            feature_gain,
        })
    }

    /// Predicts the target for one feature row.
    ///
    /// # Panics
    ///
    /// Panics if `row` has fewer features than the training data.
    pub fn predict(&self, row: &[f32]) -> f32 {
        self.base_score
            + self.learning_rate * self.trees.iter().map(|t| t.predict(row)).sum::<f32>()
    }

    /// Predicts targets for a batch of rows.
    pub fn predict_batch(&self, rows: &[Vec<f32>]) -> Vec<f32> {
        rows.iter().map(|r| self.predict(r)).collect()
    }

    /// Number of trees in the ensemble.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Total split gain attributed to each feature across all trees.
    pub fn feature_importance(&self) -> &[f64] {
        &self.feature_gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> (Vec<Vec<f32>>, Vec<f32>) {
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                let x = (i % 17) as f32 / 17.0;
                let y = (i % 23) as f32 / 23.0;
                vec![x, y, 0.0]
            })
            .collect();
        let targets: Vec<f32> = rows.iter().map(|r| 3.0 * r[0] - 2.0 * r[1] + 1.0).collect();
        (rows, targets)
    }

    #[test]
    fn fits_linear_function_xgboost_style() {
        let (rows, targets) = toy(400);
        let model = Gbdt::fit(&rows, &targets, &GbdtConfig::xgboost_preset(1)).unwrap();
        let preds = model.predict_batch(&rows);
        let rmse = preds
            .iter()
            .zip(&targets)
            .map(|(&p, &t)| (p - t) * (p - t))
            .sum::<f32>()
            .sqrt()
            / (rows.len() as f32).sqrt();
        assert!(rmse < 0.1, "rmse {rmse}");
        assert_eq!(model.tree_count(), 150);
    }

    #[test]
    fn fits_leaf_wise_variant() {
        let (rows, targets) = toy(300);
        let model = Gbdt::fit(&rows, &targets, &GbdtConfig::lgboost_preset(2)).unwrap();
        let preds = model.predict_batch(&rows);
        let mean_err = preds
            .iter()
            .zip(&targets)
            .map(|(&p, &t)| (p - t).abs())
            .sum::<f32>()
            / rows.len() as f32;
        assert!(mean_err < 0.1, "mae {mean_err}");
    }

    #[test]
    fn constant_feature_gets_zero_importance() {
        let (rows, targets) = toy(200);
        let model = Gbdt::fit(&rows, &targets, &GbdtConfig::xgboost_preset(3)).unwrap();
        let imp = model.feature_importance();
        assert!(imp[0] > 0.0);
        assert!(imp[1] > 0.0);
        assert_eq!(imp[2], 0.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        let cfg = GbdtConfig::xgboost_preset(0);
        assert!(Gbdt::fit(&[], &[], &cfg).is_err());
        assert!(Gbdt::fit(&[vec![1.0]], &[1.0, 2.0], &cfg).is_err());
        assert!(Gbdt::fit(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0], &cfg).is_err());
        let mut bad = cfg.clone();
        bad.n_trees = 0;
        assert!(Gbdt::fit(&[vec![1.0]], &[1.0], &bad).is_err());
        let mut bad = cfg.clone();
        bad.subsample = 0.0;
        assert!(Gbdt::fit(&[vec![1.0]], &[1.0], &bad).is_err());
        let mut bad = cfg;
        bad.learning_rate = -1.0;
        assert!(Gbdt::fit(&[vec![1.0]], &[1.0], &bad).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let (rows, targets) = toy(100);
        let a = Gbdt::fit(&rows, &targets, &GbdtConfig::xgboost_preset(9)).unwrap();
        let b = Gbdt::fit(&rows, &targets, &GbdtConfig::xgboost_preset(9)).unwrap();
        assert_eq!(a.predict(&rows[0]), b.predict(&rows[0]));
    }

    #[test]
    fn single_row_predicts_its_target() {
        let model = Gbdt::fit(&[vec![1.0]], &[5.0], &GbdtConfig::xgboost_preset(0)).unwrap();
        assert!((model.predict(&[1.0]) - 5.0).abs() < 1e-4);
    }
}
