//! Dense, row-major `f32` matrix substrate for the HW-PR-NAS reproduction.
//!
//! The surrogate models in the paper (MLPs, a 2-layer LSTM with 225 hidden
//! units, a 2-layer GCN with 600 hidden units) are small enough that a
//! cache-friendly, dependency-free matrix library is sufficient to train
//! them on a CPU. This crate provides the storage type ([`Matrix`]), shape
//! checking ([`ShapeError`]), seeded random initialisation and the handful
//! of kernels the autograd tape needs (GEMM, element-wise maps, reductions,
//! row gathers, block-diagonal graph products).
//!
//! # Examples
//!
//! ```
//! use hwpr_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c, a);
//! # Ok::<(), hwpr_tensor::ShapeError>(())
//! ```

#![warn(missing_docs)]
mod fastmath;
mod gemm;
mod init;
mod matrix;
mod ops;
mod packed;
mod pool;
mod quant;
pub mod reference;
mod shape;
mod static_gemm;
mod telemetry;

pub use fastmath::{fast_sigmoid, fast_sigmoid_block, fast_tanh, fast_tanh_block};
pub use init::{he_std, xavier_std, Init};
pub use matrix::Matrix;
pub use packed::PackedWeight;
pub use pool::BufferPool;
pub use quant::Precision;
pub use shape::ShapeError;
pub use static_gemm::{lookup as static_kernel_for, StaticKernelFn, STATIC_SHAPES};

/// Convenience alias for fallible matrix operations.
pub type Result<T> = std::result::Result<T, ShapeError>;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn small_matrix() -> impl Strategy<Value = Matrix> {
        (1usize..6, 1usize..6).prop_flat_map(|(r, c)| {
            proptest::collection::vec(-10.0f32..10.0, r * c)
                .prop_map(move |v| Matrix::from_vec(r, c, v).unwrap())
        })
    }

    proptest! {
        #[test]
        fn transpose_involution(m in small_matrix()) {
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn add_commutes(m in small_matrix()) {
            let n = m.map(|x| x * 0.5 + 1.0);
            prop_assert_eq!(m.add(&n).unwrap(), n.add(&m).unwrap());
        }

        #[test]
        fn matmul_identity(m in small_matrix()) {
            let id = Matrix::identity(m.cols());
            let out = m.matmul(&id).unwrap();
            for (a, b) in out.as_slice().iter().zip(m.as_slice()) {
                prop_assert!((a - b).abs() < 1e-5);
            }
        }

        #[test]
        fn sum_matches_mean(m in small_matrix()) {
            let n = (m.rows() * m.cols()) as f32;
            prop_assert!((m.sum() - m.mean() * n).abs() < 1e-3);
        }

        #[test]
        fn matmul_distributes_over_add(a in small_matrix()) {
            let b = a.map(|x| x + 1.0);
            let c = Matrix::filled(a.cols(), 3, 0.5);
            let lhs = a.add(&b).unwrap().matmul(&c).unwrap();
            let rhs = a.matmul(&c).unwrap().add(&b.matmul(&c).unwrap()).unwrap();
            for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }
    }

    /// A matrix of the given shape with uniform entries in `[-2, 2)`.
    fn matrix_of(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-2.0f32..2.0, rows * cols)
            .prop_map(move |v| Matrix::from_vec(rows, cols, v).unwrap())
    }

    /// Differential tests: the blocked kernels must match the naive
    /// reference loop nests within tolerance on every shape — including
    /// dimensions that are not multiples of the micro-kernel tile (4x8)
    /// or the cache blocks, and degenerate 1-sized edges.
    fn max_abs_diff(a: &Matrix, b: &Matrix) -> f32 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn blocked_matmul_matches_reference(
            (a, b) in (1usize..40, 1usize..40, 1usize..40).prop_flat_map(|(m, k, n)| {
                (matrix_of(m, k), matrix_of(k, n))
            }),
        ) {
            let blocked = a.matmul(&b).unwrap();
            let naive = reference::matmul(&a, &b).unwrap();
            prop_assert!(max_abs_diff(&blocked, &naive) < 1e-4);
        }

        #[test]
        fn blocked_matmul_tn_matches_reference(
            (a, b) in (1usize..40, 1usize..40, 1usize..40).prop_flat_map(|(k, m, n)| {
                (matrix_of(k, m), matrix_of(k, n))
            }),
        ) {
            let blocked = a.matmul_tn(&b).unwrap();
            let naive = reference::matmul_tn(&a, &b).unwrap();
            prop_assert!(max_abs_diff(&blocked, &naive) < 1e-4);
        }

        #[test]
        fn blocked_matmul_nt_matches_reference(
            (a, b) in (1usize..40, 1usize..40, 1usize..40).prop_flat_map(|(m, k, n)| {
                (matrix_of(m, k), matrix_of(n, k))
            }),
        ) {
            let blocked = a.matmul_nt(&b).unwrap();
            let naive = reference::matmul_nt(&a, &b).unwrap();
            prop_assert!(max_abs_diff(&blocked, &naive) < 1e-4);
        }
    }

    /// Shapes straddling every blocking boundary (micro-tile 4x8, KC=256,
    /// MC=128, NC=512), deterministic data: the k-split accumulation of the
    /// blocked driver must stay within float tolerance of the reference.
    #[test]
    fn blocked_kernels_cross_block_boundaries() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (4, 8, 8),
            (5, 9, 7),
            (127, 257, 63),
            (129, 300, 513),
            (256, 256, 256),
        ] {
            let a = Matrix::from_vec(
                m,
                k,
                (0..m * k)
                    .map(|i| ((i * 37 % 97) as f32 - 48.0) / 24.0)
                    .collect(),
            )
            .unwrap();
            let b = Matrix::from_vec(
                k,
                n,
                (0..k * n)
                    .map(|i| ((i * 53 % 89) as f32 - 44.0) / 22.0)
                    .collect(),
            )
            .unwrap();
            let blocked = a.matmul(&b).unwrap();
            let naive = reference::matmul(&a, &b).unwrap();
            let worst = max_abs_diff(&blocked, &naive);
            assert!(worst < 1e-3, "({m},{k},{n}): max diff {worst}");
            let tn = a.transpose().matmul_tn(&b).unwrap();
            assert_eq!(tn, blocked, "tn path differs at ({m},{k},{n})");
            let nt = a.matmul_nt(&b.transpose()).unwrap();
            assert_eq!(nt, blocked, "nt path differs at ({m},{k},{n})");
        }
    }
}
