//! Differential tests: the workspace-backed kernels versus the frozen
//! originals in `hwpr_moo::reference`.
//!
//! The equivalence bar from the PR: identical fronts/ranks/crowding on
//! all inputs — including duplicated points and tied objective values —
//! and hypervolume within 1e-12. Point sets are drawn with a coarse
//! value grid (`0.0, 0.5, …`) so duplicates and per-objective ties are
//! common rather than measure-zero.

use hwpr_moo::{reference, Fronts, IncrementalHv2, MooWorkspace, ParetoArchive};
use proptest::prelude::*;

/// Point sets over a coarse grid: duplicates and ties occur constantly.
fn tied_point_set(dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(
        proptest::collection::vec((0u8..12).prop_map(|v| f64::from(v) * 0.5), dim),
        1..40,
    )
}

/// Continuous point sets (ties only by chance).
fn smooth_point_set(dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(0.0f64..100.0, dim), 1..30)
}

/// Reference front lists later fronts in traversal order; the workspace
/// normalises every front to ascending index order. Sets must agree.
fn normalised(mut fronts: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
    for f in &mut fronts {
        f.sort_unstable();
    }
    fronts
}

fn assert_kernels_match(points: &[Vec<f64>], ws: &mut MooWorkspace) {
    // ranks: exactly identical
    let expected_ranks = reference::pareto_ranks(points).unwrap();
    assert_eq!(ws.pareto_ranks(points).unwrap(), expected_ranks.as_slice());

    // fronts: identical sets per layer
    let expected_fronts = normalised(reference::fast_non_dominated_sort(points).unwrap());
    let mut fronts = Fronts::new();
    ws.fast_non_dominated_sort_into(points, &mut fronts)
        .unwrap();
    assert_eq!(fronts.len(), expected_fronts.len());
    for (k, expected) in expected_fronts.iter().enumerate() {
        assert_eq!(fronts.front(k), expected.as_slice(), "front {k}");
    }

    // first-front-only scan agrees with the full sort's first layer
    assert_eq!(
        ws.pareto_front(points).unwrap(),
        expected_fronts[0].as_slice()
    );

    // crowding: bit-identical
    let expected_crowd = reference::crowding_distance(points).unwrap();
    let crowd = ws.crowding_distance(points).unwrap();
    assert_eq!(crowd.len(), expected_crowd.len());
    for (i, (a, b)) in crowd.iter().zip(&expected_crowd).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "crowding[{i}]: {a} vs {b}");
    }

    // hypervolume: within 1e-12 of the reference path
    let reference_pt: Vec<f64> = (0..points[0].len())
        .map(|d| {
            points
                .iter()
                .map(|p| p[d])
                .fold(f64::NEG_INFINITY, f64::max)
                + 1.0
        })
        .collect();
    let expected_hv = reference::hypervolume(points, &reference_pt).unwrap();
    let hv = ws.hypervolume(points, &reference_pt).unwrap();
    assert!(
        (hv - expected_hv).abs() <= 1e-12 * expected_hv.max(1.0),
        "hv {hv} vs reference {expected_hv}"
    );
}

proptest! {
    #[test]
    fn kernels_match_reference_with_ties_1d(points in tied_point_set(1)) {
        assert_kernels_match(&points, &mut MooWorkspace::new());
    }

    #[test]
    fn kernels_match_reference_with_ties_2d(points in tied_point_set(2)) {
        assert_kernels_match(&points, &mut MooWorkspace::new());
    }

    #[test]
    fn kernels_match_reference_with_ties_3d(points in tied_point_set(3)) {
        assert_kernels_match(&points, &mut MooWorkspace::new());
    }

    #[test]
    fn kernels_match_reference_with_ties_4d(points in tied_point_set(4)) {
        assert_kernels_match(&points, &mut MooWorkspace::new());
    }

    #[test]
    fn kernels_match_reference_smooth_2d(points in smooth_point_set(2)) {
        assert_kernels_match(&points, &mut MooWorkspace::new());
    }

    #[test]
    fn kernels_match_reference_smooth_3d(points in smooth_point_set(3)) {
        assert_kernels_match(&points, &mut MooWorkspace::new());
    }

    /// A single warm workspace across many differently-shaped inputs must
    /// behave exactly like a fresh one (no state leaks between calls).
    #[test]
    fn warm_workspace_matches_cold(sets in proptest::collection::vec(tied_point_set(2), 1..5)) {
        let mut warm = MooWorkspace::new();
        for points in &sets {
            assert_kernels_match(points, &mut warm);
        }
    }

    /// Free functions route through the workspace: spot-check they agree
    /// with the reference too.
    #[test]
    fn free_functions_match_reference(points in tied_point_set(2)) {
        let expected = normalised(reference::fast_non_dominated_sort(&points).unwrap());
        prop_assert_eq!(hwpr_moo::fast_non_dominated_sort(&points).unwrap(), expected.clone());
        prop_assert_eq!(
            hwpr_moo::pareto_ranks(&points).unwrap(),
            reference::pareto_ranks(&points).unwrap()
        );
        prop_assert_eq!(hwpr_moo::pareto_front(&points).unwrap(), expected[0].clone());
    }
}

/// The island merge path: points arrive at the global [`ParetoArchive`]
/// in island-sized chunks (one `extend_from` per island per epoch, the
/// exact shape of the coordinator merge). The archived set must equal
/// the distinct first-front members of feeding **all** points through a
/// single [`MooWorkspace`] at once — regardless of how the points were
/// chunked, and with duplicate/tied-objective migrants on the coarse
/// grid exercised constantly.
fn assert_island_merge_matches_workspace(points: &[Vec<f64>], chunk: usize) {
    let mut archive = ParetoArchive::new();
    for (island, islanders) in points.chunks(chunk.max(1)).enumerate() {
        let base = island * chunk.max(1);
        archive
            .extend_from(
                islanders
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (p.as_slice(), (base + i) as u64)),
            )
            .unwrap();
    }

    let mut ws = MooWorkspace::new();
    let front = ws.pareto_front(points).unwrap();
    let mut expected: Vec<&Vec<f64>> = front.iter().map(|&i| &points[i]).collect();
    expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
    expected.dedup();

    let archived: Vec<&Vec<f64>> = archive.members().iter().map(|m| &m.objectives).collect();
    assert_eq!(
        archived, expected,
        "chunk={chunk}: archive disagrees with the single-workspace front"
    );
    // archived tags point back at real members of the offered set
    for m in archive.members() {
        assert_eq!(&points[m.tag as usize], &m.objectives);
    }
}

proptest! {
    #[test]
    fn island_merge_matches_single_workspace_2d(
        points in tied_point_set(2),
        chunk in 1usize..9,
    ) {
        assert_island_merge_matches_workspace(&points, chunk);
    }

    #[test]
    fn island_merge_matches_single_workspace_3d(
        points in tied_point_set(3),
        chunk in 1usize..9,
    ) {
        assert_island_merge_matches_workspace(&points, chunk);
    }

    /// Different chunkings (different island counts / executor shapes)
    /// must land on byte-identical archived point sets.
    #[test]
    fn island_merge_is_chunking_independent(points in tied_point_set(2)) {
        let collect = |chunk: usize| {
            let mut archive = ParetoArchive::new();
            for islanders in points.chunks(chunk) {
                archive
                    .extend_from(islanders.iter().map(|p| (p.as_slice(), 0)))
                    .unwrap();
            }
            archive
                .members()
                .iter()
                .map(|m| m.objectives.clone())
                .collect::<Vec<_>>()
        };
        let whole = collect(points.len());
        for chunk in [1, 2, 3, 7] {
            prop_assert_eq!(&whole, &collect(chunk));
        }
    }
}

/// Incremental-vs-batch hypervolume across a simulated 30-generation
/// front evolution: each generation mutates the population toward the
/// origin, the archive folds in every generation's population front, and
/// the archived hypervolume must stay within 1e-12 of a batch recompute
/// over every point ever inserted.
#[test]
fn incremental_hv_tracks_batch_over_thirty_generations() {
    let reference_pt = [100.0, 100.0];
    let mut archive = IncrementalHv2::new(&reference_pt).unwrap();
    let mut ws = MooWorkspace::new();

    // deterministic LCG so the test needs no rand dependency
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 40) as f64 / (1u64 << 24) as f64
    };

    let mut population: Vec<Vec<f64>> = (0..40)
        .map(|_| vec![20.0 + 70.0 * next(), 20.0 + 70.0 * next()])
        .collect();
    let mut inserted: Vec<Vec<f64>> = Vec::new();

    for generation in 0..30 {
        // drift: each point moves toward the origin by a random factor,
        // occasionally jumping (duplicates + regressions included)
        for p in &mut population {
            let f = 0.9 + 0.1 * next();
            p[0] *= f;
            p[1] *= 0.9 + 0.1 * next();
            if next() < 0.1 {
                p[0] = 20.0 + 70.0 * next();
            }
        }
        // fold this generation's non-dominated front into the archive
        let front: Vec<usize> = ws.pareto_front(&population).unwrap().to_vec();
        for &i in &front {
            archive.insert(population[i][0], population[i][1]).unwrap();
            inserted.push(population[i].clone());
        }
        let batch = reference::hypervolume(&inserted, &reference_pt).unwrap();
        assert!(
            (archive.hypervolume() - batch).abs() <= 1e-12 * batch.max(1.0),
            "generation {generation}: incremental {} vs batch {batch}",
            archive.hypervolume()
        );
    }
    assert!(archive.inserts() > archive.accepted());
    assert!(archive.front_len() >= 1);
}
