//! Optimizers, learning-rate schedules and early stopping.
//!
//! Table II of the paper trains HW-PR-NAS with AdamW (lr 3e-4, weight decay
//! 3e-4), cosine annealing over 80 epochs, and early stopping at 30 epochs.

use crate::params::Params;
use hwpr_tensor::Matrix;

/// Per-parameter gradient list as produced by
/// [`crate::Binder::finish`]: `None` entries are skipped.
pub type GradientList = [Option<Matrix>];

/// A first-order optimizer over a [`Params`] store.
pub trait Optimizer {
    /// Applies one update step using `grads` (aligned with the store).
    ///
    /// # Panics
    ///
    /// Implementations may panic if a gradient's shape disagrees with its
    /// parameter.
    fn step(&mut self, params: &mut Params, grads: &GradientList);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// AdamW: Adam with decoupled weight decay.
#[derive(Debug, Clone)]
pub struct AdamW {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    step_count: u64,
    first_moment: Vec<Option<Matrix>>,
    second_moment: Vec<Option<Matrix>>,
}

impl AdamW {
    /// Creates AdamW with default betas `(0.9, 0.999)`, `eps = 1e-8` and no
    /// weight decay.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            step_count: 0,
            first_moment: Vec::new(),
            second_moment: Vec::new(),
        }
    }

    /// Sets the decoupled weight decay coefficient (paper: 3e-4).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Sets the Adam betas.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Number of update steps performed.
    pub fn steps(&self) -> u64 {
        self.step_count
    }

    fn ensure_state(&mut self, params: &Params) {
        while self.first_moment.len() < params.len() {
            self.first_moment.push(None);
            self.second_moment.push(None);
        }
    }
}

impl Optimizer for AdamW {
    fn step(&mut self, params: &mut Params, grads: &GradientList) {
        self.ensure_state(params);
        self.step_count += 1;
        let t = self.step_count as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        let (beta1, beta2) = (self.beta1, self.beta2);
        let (lr, wd, eps) = (self.lr, self.weight_decay, self.eps);
        for idx in 0..params.len() {
            let Some(grad) = grads.get(idx).and_then(|g| g.as_ref()) else {
                continue;
            };
            let id = params.id_at(idx);
            let shape = params.get(id).shape();
            assert_eq!(grad.shape(), shape, "gradient shape mismatch");
            let m = self.first_moment[idx].get_or_insert_with(|| Matrix::zeros(shape.0, shape.1));
            let v = self.second_moment[idx].get_or_insert_with(|| Matrix::zeros(shape.0, shape.1));
            // single fused sweep: moment updates and the parameter step in
            // one pass over persistent state buffers, no temporaries
            let target = params.get_mut(id);
            for (((p, &g), mv), vv) in target
                .as_mut_slice()
                .iter_mut()
                .zip(grad.as_slice())
                .zip(m.as_mut_slice())
                .zip(v.as_mut_slice())
            {
                *mv = beta1 * *mv + (1.0 - beta1) * g;
                *vv = beta2 * *vv + (1.0 - beta2) * g * g;
                let m_hat = *mv / bias1;
                let v_hat = *vv / bias2;
                // decoupled decay: shrink the weight directly, not the gradient
                *p -= lr * (m_hat / (v_hat.sqrt() + eps) + wd * *p);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Plain SGD with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Option<Matrix>>,
}

impl Sgd {
    /// Creates SGD without momentum.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Sets the momentum coefficient.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut Params, grads: &GradientList) {
        while self.velocity.len() < params.len() {
            self.velocity.push(None);
        }
        for idx in 0..params.len() {
            let Some(grad) = grads.get(idx).and_then(|g| g.as_ref()) else {
                continue;
            };
            let id = params.id_at(idx);
            let shape = params.get(id).shape();
            assert_eq!(grad.shape(), shape, "gradient shape mismatch");
            let vel = self.velocity[idx].get_or_insert_with(|| Matrix::zeros(shape.0, shape.1));
            for (v, &g) in vel.as_mut_slice().iter_mut().zip(grad.as_slice()) {
                *v = self.momentum * *v + g;
            }
            let lr = self.lr;
            let vel = self.velocity[idx].as_ref().expect("just inserted");
            let target = params.get_mut(id);
            for (p, &v) in target.as_mut_slice().iter_mut().zip(vel.as_slice()) {
                *p -= lr * v;
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Cosine-annealing schedule: decays from the base learning rate to
/// `min_lr` over `total_epochs` (Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosineAnnealing {
    base_lr: f32,
    min_lr: f32,
    total_epochs: usize,
}

impl CosineAnnealing {
    /// Creates a schedule decaying `base_lr → min_lr` over `total_epochs`.
    ///
    /// # Panics
    ///
    /// Panics if `total_epochs == 0`.
    pub fn new(base_lr: f32, min_lr: f32, total_epochs: usize) -> Self {
        assert!(total_epochs > 0, "schedule needs at least one epoch");
        Self {
            base_lr,
            min_lr,
            total_epochs,
        }
    }

    /// Learning rate for `epoch` (clamped to the final value afterwards).
    pub fn learning_rate_at(&self, epoch: usize) -> f32 {
        let t = (epoch.min(self.total_epochs) as f32) / self.total_epochs as f32;
        self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
    }
}

/// Patience-based early stopping on a validation metric (lower is better).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyStopping {
    patience: usize,
    best: f32,
    since_best: usize,
}

impl EarlyStopping {
    /// Stops after `patience` consecutive epochs without improvement.
    pub fn new(patience: usize) -> Self {
        Self {
            patience,
            best: f32::INFINITY,
            since_best: 0,
        }
    }

    /// Records a validation value; returns `true` when training should stop.
    pub fn update(&mut self, value: f32) -> bool {
        if value < self.best {
            self.best = value;
            self.since_best = 0;
        } else {
            self.since_best += 1;
        }
        self.since_best >= self.patience
    }

    /// Best value observed so far.
    pub fn best(&self) -> f32 {
        self.best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwpr_tensor::Init;

    fn quadratic_grads(params: &Params) -> Vec<Option<Matrix>> {
        // gradient of f(w) = ||w||^2 / 2 is w
        params.iter().map(|(_, _, v)| Some(v.clone())).collect()
    }

    #[test]
    fn adamw_minimises_quadratic() {
        let mut params = Params::new();
        params.add("w", 2, 2, Init::Normal(1.0), 5);
        let mut opt = AdamW::new(0.1);
        for _ in 0..200 {
            let grads = quadratic_grads(&params);
            opt.step(&mut params, &grads);
        }
        let (id, _, _) = params.iter().next().unwrap();
        assert!(params.get(id).norm() < 1e-2);
        assert_eq!(opt.steps(), 200);
    }

    #[test]
    fn sgd_with_momentum_minimises_quadratic() {
        let mut params = Params::new();
        params.add("w", 3, 1, Init::Normal(1.0), 2);
        let mut opt = Sgd::new(0.1).with_momentum(0.5);
        for _ in 0..100 {
            let grads = quadratic_grads(&params);
            opt.step(&mut params, &grads);
        }
        let (id, _, _) = params.iter().next().unwrap();
        assert!(params.get(id).norm() < 1e-3);
    }

    #[test]
    fn weight_decay_shrinks_unused_gradient_free_params() {
        let mut params = Params::new();
        let id = params.add_matrix("w", Matrix::filled(1, 1, 1.0));
        let mut opt = AdamW::new(0.0).with_weight_decay(0.1);
        // zero gradient, but decay still applies through lr... lr is 0 so nothing moves
        opt.step(&mut params, &[Some(Matrix::zeros(1, 1))]);
        assert_eq!(params.get(id)[(0, 0)], 1.0);
        opt.set_learning_rate(1.0);
        opt.step(&mut params, &[Some(Matrix::zeros(1, 1))]);
        assert!(params.get(id)[(0, 0)] < 1.0);
    }

    #[test]
    fn none_gradients_are_skipped() {
        let mut params = Params::new();
        let id = params.add_matrix("w", Matrix::filled(1, 1, 3.0));
        let mut opt = AdamW::new(0.5);
        opt.step(&mut params, &[None]);
        assert_eq!(params.get(id)[(0, 0)], 3.0);
    }

    #[test]
    fn cosine_schedule_endpoints_and_monotonicity() {
        let sched = CosineAnnealing::new(0.0003, 0.0, 80);
        assert!((sched.learning_rate_at(0) - 0.0003).abs() < 1e-9);
        assert!(sched.learning_rate_at(80) < 1e-9);
        assert!(sched.learning_rate_at(100) < 1e-9); // clamped
        for e in 0..80 {
            assert!(sched.learning_rate_at(e) >= sched.learning_rate_at(e + 1) - 1e-9);
        }
    }

    #[test]
    fn early_stopping_patience() {
        let mut es = EarlyStopping::new(3);
        assert!(!es.update(1.0));
        assert!(!es.update(0.5));
        assert!(!es.update(0.6));
        assert!(!es.update(0.7));
        assert!(es.update(0.8));
        assert_eq!(es.best(), 0.5);
    }

    #[test]
    fn optimizer_lr_accessors() {
        let mut opt = AdamW::new(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.2);
        assert_eq!(opt.learning_rate(), 0.2);
    }
}
