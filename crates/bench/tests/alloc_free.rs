//! Proves the tentpole property of the training hot path: once the tape
//! arena, buffer pools, gradient store and optimizer state are warm, a
//! training step performs zero heap allocations.
//!
//! Gated behind the `alloc-count` feature because it installs a global
//! allocator; run with `cargo test -p hwpr-bench --features alloc-count`.

#![cfg(feature = "alloc-count")]

use hwpr_bench::alloc_count::{allocations, CountingAllocator};
use hwpr_bench::train_step::{step_data, FusedTrainer, StepConfig};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_train_step_is_allocation_free() {
    let config = StepConfig::tiny();
    let data = step_data(&config);
    let mut trainer = FusedTrainer::new(&config);
    // warm-up: grows the node arena, buffer pools, gradient buffers and
    // AdamW moments to their steady-state footprint
    for _ in 0..5 {
        trainer.step(&data);
    }
    let before = allocations();
    let mut loss = 0.0;
    for _ in 0..3 {
        loss += trainer.step(&data);
    }
    let after = allocations();
    assert!(loss.is_finite());
    assert_eq!(
        after - before,
        0,
        "steady-state training steps performed {} heap allocations",
        after - before
    );
}
