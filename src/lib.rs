//! # HW-PR-NAS — Pareto Rank Surrogate Model for Hardware-aware NAS
//!
//! A from-scratch Rust reproduction of *"Pareto Rank Surrogate Model for
//! Hardware-aware Neural Architecture Search"* (Benmeziane et al., ISPASS
//! 2022). This facade crate re-exports every subsystem so downstream users
//! can depend on a single crate:
//!
//! - [`tensor`] / [`autograd`] / [`nn`] — a small deep-learning stack
//!   (tape-based reverse-mode autodiff, Linear/Embedding/LSTM/GCN layers,
//!   AdamW, cosine annealing, ListMLE & hinge ranking losses).
//! - [`gbdt`] — gradient-boosted regression trees (XGBoost- and
//!   LightGBM-style growth) used as regressor baselines in Table I.
//! - [`nasbench`] — NAS-Bench-201 and FBNet search spaces with string,
//!   graph and feature encodings plus a FLOPs/params profiler.
//! - [`hwmodel`] — analytical latency/energy models for the paper's seven
//!   hardware platforms and the deterministic synthetic benchmark tables.
//! - [`moo`] — Pareto dominance, non-dominated sorting, hypervolume.
//! - [`metrics`] — Kendall τ, Spearman ρ, RMSE and summary statistics.
//! - [`obs`] — zero-overhead structured telemetry: spans, counters /
//!   gauges / histograms and JSONL run records (`HWPR_TELEMETRY`).
//! - [`core`] — the paper's contribution: the HW-PR-NAS surrogate with its
//!   Pareto ranking loss, plus BRP-NAS- and GATES-style baselines.
//! - [`search`] — random search and the MOEA of Algorithm 1.
//! - [`serve`] — surrogate-as-a-service: a batched TCP prediction server
//!   with adaptive micro-batching and a hot-swappable model registry.
//!
//! # Quickstart
//!
//! ```
//! use hw_pr_nas::hwmodel::{Platform, SimBench, SimBenchConfig};
//! use hw_pr_nas::nasbench::SearchSpaceId;
//!
//! // Materialise a small slice of the synthetic NAS-Bench-201 table.
//! let bench = SimBench::generate(SimBenchConfig {
//!     space: SearchSpaceId::NasBench201,
//!     sample_size: Some(32),
//!     seed: 7,
//!     ..SimBenchConfig::default()
//! });
//! let entry = &bench.entries()[0];
//! let latency = entry.latency(Platform::EdgeGpu);
//! assert!(latency > 0.0);
//! ```

#![warn(missing_docs)]

pub use hwpr_autograd as autograd;
pub use hwpr_core as core;
pub use hwpr_gbdt as gbdt;
pub use hwpr_hwmodel as hwmodel;
pub use hwpr_metrics as metrics;
pub use hwpr_moo as moo;
pub use hwpr_nasbench as nasbench;
pub use hwpr_nn as nn;
pub use hwpr_obs as obs;
pub use hwpr_search as search;
pub use hwpr_serve as serve;
pub use hwpr_tensor as tensor;
