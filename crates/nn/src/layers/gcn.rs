//! Graph convolution layer over per-sample constant adjacencies.

use crate::params::{Binder, ParamId, Params};
use crate::Result;
use hwpr_autograd::Var;
use hwpr_tensor::{Init, Matrix};

/// One graph-convolution layer: `H' = act(Â · H · W + b)` applied
/// independently to each sample's node block.
///
/// The batch is packed as `[batch * nodes, features]` with one (constant)
/// normalised adjacency `Â` per sample — in NAS encodings the adjacency is
/// derived from the architecture and never learned. Following BRP-NAS, the
/// encoders add a *global node* connected to every operation node; that is
/// the caller's responsibility when building `Â`.
#[derive(Debug, Clone)]
pub struct GcnLayer {
    weight: ParamId,
    bias: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl GcnLayer {
    /// Registers a graph-convolution layer mapping `in_dim` to `out_dim`
    /// node features.
    pub fn new(params: &mut Params, name: &str, in_dim: usize, out_dim: usize, seed: u64) -> Self {
        let weight = params.add(&format!("{name}.weight"), in_dim, out_dim, Init::He, seed);
        let bias = params.add(&format!("{name}.bias"), 1, out_dim, Init::Zeros, seed);
        Self {
            weight,
            bias,
            in_dim,
            out_dim,
        }
    }

    /// Input node-feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output node-feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer to `x` (`[batch * nodes, in_dim]`) with one
    /// `nodes x nodes` adjacency per sample, followed by ReLU.
    ///
    /// Adjacencies are accepted via [`std::borrow::Borrow`] so callers can
    /// pass owned matrices or shared references without cloning.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the block structure or feature dimension
    /// is inconsistent.
    pub fn forward(
        &self,
        binder: &mut Binder<'_, '_>,
        x: Var,
        adjacency: &[impl std::borrow::Borrow<Matrix>],
        nodes: usize,
    ) -> Result<Var> {
        let w = binder.param(self.weight);
        let b = binder.param(self.bias);
        let tape = binder.tape();
        // stage the adjacency stack in pooled storage (recycled on reset)
        let mut adj = tape.scratch_mats();
        for m in adjacency {
            adj.push(tape.alloc_copy(m.borrow()));
        }
        let agg = tape.block_graph_matmul(x, adj, nodes)?;
        // fused affine + ReLU over the aggregated node features
        Ok(tape.linear_act(agg, w, Some(b), hwpr_autograd::Act::Relu)?)
    }

    /// Compiles the layer for tape-free inference (prepacked weight plus a
    /// copied bias row).
    pub fn freeze(&self, params: &Params) -> crate::infer::FrozenGcnLayer {
        self.freeze_with(params, hwpr_tensor::Precision::F32)
    }

    /// [`GcnLayer::freeze`] with the weight panel stored at `precision`.
    pub fn freeze_with(
        &self,
        params: &Params,
        precision: hwpr_tensor::Precision,
    ) -> crate::infer::FrozenGcnLayer {
        crate::infer::FrozenGcnLayer::from_parts(
            params.get(self.weight),
            params.get(self.bias),
            self.out_dim,
            precision,
        )
    }
}

/// Builds the symmetric-normalised adjacency `D^{-1/2}(A + I)D^{-1/2}`
/// used by GCNs, from a directed 0/1 adjacency.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn normalize_adjacency(a: &Matrix) -> Matrix {
    assert_eq!(a.rows(), a.cols(), "adjacency must be square");
    let n = a.rows();
    // symmetrise + self loops
    let mut sym = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let v = if i == j {
                1.0
            } else {
                (a[(i, j)] + a[(j, i)]).min(1.0)
            };
            sym.set(i, j, v);
        }
    }
    let mut deg = vec![0.0f32; n];
    for (i, d) in deg.iter_mut().enumerate() {
        *d = sym.row(i).iter().sum::<f32>().max(1e-12);
    }
    let mut out = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            out.set(i, j, sym[(i, j)] / (deg[i].sqrt() * deg[j].sqrt()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwpr_autograd::Tape;

    #[test]
    fn normalized_adjacency_rows_are_bounded() {
        let a = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0], &[0.0, 0.0, 0.0]]);
        let norm = normalize_adjacency(&a);
        assert_eq!(norm.shape(), (3, 3));
        // symmetric
        for i in 0..3 {
            for j in 0..3 {
                assert!((norm[(i, j)] - norm[(j, i)]).abs() < 1e-6);
            }
        }
        // spectral norm of D^-1/2 (A+I) D^-1/2 is <= 1; row sums <= sqrt(n)
        for i in 0..3 {
            assert!(norm.row(i).iter().sum::<f32>() <= 3.0_f32.sqrt() + 1e-5);
        }
    }

    #[test]
    fn forward_shapes_and_nonnegativity() {
        let mut params = Params::new();
        let gcn = GcnLayer::new(&mut params, "g", 4, 6, 1);
        assert_eq!(gcn.in_dim(), 4);
        assert_eq!(gcn.out_dim(), 6);
        let adj = normalize_adjacency(&Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]));
        let mut tape = Tape::new();
        let mut binder = Binder::new(&mut tape, &params);
        let x = binder.input(Matrix::ones(4, 4)); // batch 2, nodes 2
        let y = gcn.forward(&mut binder, x, &[adj.clone(), adj], 2).unwrap();
        let v = tape.value(y);
        assert_eq!(v.shape(), (4, 6));
        assert!(v.as_slice().iter().all(|&e| e >= 0.0));
    }

    #[test]
    fn mismatched_blocks_error() {
        let mut params = Params::new();
        let gcn = GcnLayer::new(&mut params, "g", 2, 2, 0);
        let adj = Matrix::identity(2);
        let mut tape = Tape::new();
        let mut binder = Binder::new(&mut tape, &params);
        let x = binder.input(Matrix::ones(3, 2)); // 3 rows not divisible into 2-node blocks
        assert!(gcn.forward(&mut binder, x, &[adj], 2).is_err());
    }

    #[test]
    fn gradients_flow_through_gcn() {
        let mut params = Params::new();
        let gcn = GcnLayer::new(&mut params, "g", 3, 2, 5);
        let adj = normalize_adjacency(&Matrix::from_rows(&[
            &[0.0, 1.0, 1.0],
            &[0.0, 0.0, 1.0],
            &[0.0, 0.0, 0.0],
        ]));
        let mut tape = Tape::new();
        let mut binder = Binder::for_training(&mut tape, &params);
        let x = binder.input(Matrix::ones(3, 3));
        let y = gcn.forward(&mut binder, x, &[adj], 3).unwrap();
        let loss = binder.tape().mean_all(y);
        let grads = binder.finish(loss).unwrap();
        assert!(grads[0].is_some() && grads[1].is_some());
    }
}
