//! Differential tests for the island-model search:
//!
//! - a seeded run is a pure function of `(config, seed)` — bit-identical
//!   when re-run, and bit-identical across executor worker-lane counts,
//!   for 1, 2 and 8 logical islands;
//! - a run checkpointed mid-flight and resumed finishes bit-identical to
//!   the uninterrupted run (populations, archive, hypervolume).

use hwpr_core::{HwPrNas, ModelConfig, SurrogateDataset, TrainConfig};
use hwpr_hwmodel::{Platform, SimBench, SimBenchConfig};
use hwpr_nasbench::{Dataset, SearchSpaceId};
use hwpr_search::{Evaluator, HwPrNasEvaluator, IslandConfig, IslandSearch, IslandSearchResult};
use std::sync::Arc;

fn trained_model() -> Arc<HwPrNas> {
    let bench = SimBench::generate(SimBenchConfig {
        space: SearchSpaceId::NasBench201,
        sample_size: Some(48),
        seed: 3,
    });
    let data = SurrogateDataset::from_simbench(&bench, Dataset::Cifar10, Platform::EdgeGpu)
        .expect("fixture dataset");
    let (model, _) =
        HwPrNas::fit(&data, &ModelConfig::tiny(), &TrainConfig::tiny()).expect("tiny fit");
    Arc::new(model)
}

fn factory(model: &Arc<HwPrNas>) -> impl FnMut(usize) -> Box<dyn Evaluator + Send> + '_ {
    move |_id| Box::new(HwPrNasEvaluator::new(Arc::clone(model), Platform::EdgeGpu))
}

fn config(islands: usize, workers: usize) -> IslandConfig {
    IslandConfig {
        islands,
        workers,
        generations: 6,
        migration_every: 2,
        ..IslandConfig::small(SearchSpaceId::NasBench201)
    }
    .with_seed(11)
}

fn assert_bit_identical(a: &IslandSearchResult, b: &IslandSearchResult) {
    assert_eq!(a.populations, b.populations, "populations diverged");
    assert_eq!(a.archive, b.archive, "archives diverged");
    assert_eq!(a.hypervolume, b.hypervolume, "hypervolume diverged");
    assert_eq!(a.evaluations, b.evaluations);
    assert_eq!(a.migrants_accepted, b.migrants_accepted);
}

#[test]
fn seeded_runs_are_replayable_across_lane_counts() {
    let model = trained_model();
    for islands in [1, 2, 8] {
        let serial = IslandSearch::new(config(islands, 1))
            .expect("valid config")
            .run(factory(&model))
            .expect("search runs");
        // re-run with the same config: deterministic replay
        let again = IslandSearch::new(config(islands, 1))
            .unwrap()
            .run(factory(&model))
            .unwrap();
        assert_bit_identical(&serial, &again);
        // the worker-lane count is an executor choice, never a result
        for workers in [2, 8] {
            let parallel = IslandSearch::new(config(islands, workers))
                .unwrap()
                .run(factory(&model))
                .unwrap();
            assert_bit_identical(&serial, &parallel);
        }
    }
}

#[test]
fn checkpoint_and_resume_matches_uninterrupted_run() {
    let model = trained_model();
    let uninterrupted = IslandSearch::new(config(2, 2))
        .unwrap()
        .run(factory(&model))
        .unwrap();

    // checkpoint every epoch; the file left behind is the state at the
    // last epoch boundary before completion (generation 4 of 6) — exactly
    // what a kill between epochs would leave
    let dir = std::env::temp_dir().join(format!("hwpr_island_ckpt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("snapshot.json");
    let checkpointed = IslandSearch::new(IslandConfig {
        checkpoint_every: 1,
        checkpoint_path: Some(path.to_string_lossy().into_owned()),
        ..config(2, 2)
    })
    .unwrap()
    .run(factory(&model))
    .unwrap();
    // checkpointing itself must not perturb the search
    assert_bit_identical(&uninterrupted, &checkpointed);

    let snapshot = IslandSearch::load_snapshot(&path).expect("snapshot readable");
    assert!(
        snapshot.generations_done < snapshot.config.generations,
        "snapshot must be mid-run"
    );
    let resumed = IslandSearch::resume(&snapshot, factory(&model)).expect("resume runs");
    assert_bit_identical(&uninterrupted, &resumed);
    assert_eq!(resumed.generations, uninterrupted.generations);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_round_trips_through_json() {
    let model = trained_model();
    let dir = std::env::temp_dir().join(format!("hwpr_island_snap_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("snapshot.json");
    IslandSearch::new(IslandConfig {
        checkpoint_every: 1,
        checkpoint_path: Some(path.to_string_lossy().into_owned()),
        ..config(2, 1)
    })
    .unwrap()
    .run(factory(&model))
    .unwrap();
    let snapshot = IslandSearch::load_snapshot(&path).expect("snapshot readable");
    // the embedded config governs a resume: verify the exact fields
    assert_eq!(snapshot.config.islands, 2);
    assert_eq!(snapshot.islands.len(), 2);
    for island in &snapshot.islands {
        assert_eq!(island.population.len(), snapshot.config.population);
        assert!(!island.cache.is_empty(), "cache shard not persisted");
    }
    // tags index into the elite store
    let elites = snapshot.elites.len() as u64;
    assert!(snapshot.archive_tags.iter().all(|&t| t < elites));
    std::fs::remove_dir_all(&dir).ok();
}
