//! Regenerates Figure 6 (Pareto fronts across edge platforms).
fn main() {
    let harness = hwpr_experiments::Harness::new();
    let report = hwpr_experiments::exps::fig6::run(&harness);
    hwpr_experiments::write_report("fig6_pareto_fronts", &report);
}
