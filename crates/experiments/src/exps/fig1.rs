//! Figure 1: one Pareto surrogate (HW-PR-NAS) vs two surrogates (BRP-NAS)
//! — front quality, search-time speedup and normalised hypervolume on
//! NAS-Bench-201 / CIFAR-10 / Edge GPU.

use crate::{
    fmt_duration, nb201_reference_objectives, shared_reference, true_front, true_objectives,
    Harness, MarkdownTable,
};
use hwpr_hwmodel::Platform;
use hwpr_moo::MooWorkspace;
use hwpr_nasbench::{Dataset, SearchSpaceId};
use hwpr_search::{HwPrNasEvaluator, Moea, PairEvaluator};
use std::fmt::Write as _;

/// Runs the experiment and returns the markdown report.
pub fn run(h: &Harness) -> String {
    let dataset = Dataset::Cifar10;
    let platform = Platform::EdgeGpu;
    let space = SearchSpaceId::NasBench201;
    let data = h.dataset(space, dataset, platform);
    let oracle = h.measured(dataset, platform);

    // the same per-call serving cost as Fig. 7: the paper's speedup bar
    // measures searches whose per-evaluation cost is dominated by the
    // model-serving stack, so two calls per architecture cost double
    let moea = Moea::new(h.scale.moea_config(vec![space]).with_seed(1)).expect("valid config");
    let model = h.train_hw_pr_nas(&data, 1);
    let mut hwpr_eval =
        HwPrNasEvaluator::new(model, platform).with_simulated_call_cost(super::fig7::CALL_COST_S);
    let hwpr = moea.run(&mut hwpr_eval).expect("search failed");
    let pair = h.train_brp_nas(&data, 1);
    let mut pair_eval = PairEvaluator::new(pair).with_simulated_call_cost(super::fig7::CALL_COST_S);
    let brp = moea.run(&mut pair_eval).expect("search failed");

    let mut truth = nb201_reference_objectives(h, dataset, platform);
    let hwpr_objs = true_objectives(&hwpr.population, &oracle);
    let brp_objs = true_objectives(&brp.population, &oracle);
    // the discovered points are genuine oracle measurements: fold them
    // into the best-known front so normalized HV is capped at 1
    truth.extend(hwpr_objs.iter().cloned());
    truth.extend(brp_objs.iter().cloned());
    let reference = shared_reference(&[truth.clone()]);
    // one workspace for all three hypervolumes; the kernel extracts each
    // front itself, and the reference bounds every folded point
    let mut moo = MooWorkspace::new();
    let truth_front: Vec<Vec<f64>> = moo
        .pareto_front(&truth)
        .expect("non-empty truth")
        .iter()
        .map(|&i| truth[i].clone())
        .collect();
    let hv_truth = moo
        .hypervolume(&truth, &reference)
        .expect("reference bounds truth");
    let mut nhv = |pop: &[hwpr_nasbench::Architecture]| {
        let objs = true_objectives(pop, &oracle);
        moo.hypervolume(&objs, &reference)
            .expect("reference bounds population")
            / hv_truth
    };
    let hwpr_nhv = nhv(&hwpr.population);
    let brp_nhv = nhv(&brp.population);
    let speedup = brp.total_time().as_secs_f64() / hwpr.total_time().as_secs_f64().max(1e-9);

    let mut out = String::new();
    let _ = writeln!(out, "# Figure 1 — one Pareto surrogate vs two surrogates\n");
    let _ = writeln!(
        out,
        "NAS-Bench-201 / {dataset} / {platform}; MOEA at scale `{:?}`.\n",
        h.scale
    );
    let mut t = MarkdownTable::new(vec![
        "Method",
        "Search time",
        "Evaluations",
        "Surrogate calls",
        "Normalized hypervolume ↑",
    ]);
    t.row(vec![
        "MOEA + HW-PR-NAS (1 surrogate)".to_string(),
        fmt_duration(hwpr.total_time()),
        hwpr.evaluations.to_string(),
        hwpr.surrogate_calls.to_string(),
        format!("{hwpr_nhv:.3}"),
    ]);
    t.row(vec![
        "MOEA + BRP-NAS (2 surrogates)".to_string(),
        fmt_duration(brp.total_time()),
        brp.evaluations.to_string(),
        brp.surrogate_calls.to_string(),
        format!("{brp_nhv:.3}"),
    ]);
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\nSearch-time speedup of the single fused surrogate: **{speedup:.2}x** \
         (the paper reports ≈2.5x; times include the {:.1} s-per-call \
         serving cost of Fig. 7 — raw in-process wall times are \
         {:.0} ms vs {:.0} ms).\n",
        super::fig7::CALL_COST_S,
        hwpr.wall_time.as_secs_f64() * 1e3,
        brp.wall_time.as_secs_f64() * 1e3,
    );
    let _ = writeln!(
        out,
        "## Pareto front approximations (error %, latency ms)\n"
    );
    for (name, pop) in [
        ("HW-PR-NAS", &hwpr.population),
        ("BRP-NAS", &brp.population),
    ] {
        let mut front = true_front(pop, &oracle);
        front.sort_by(|a, b| a[1].total_cmp(&b[1]));
        let _ = writeln!(out, "### {name} front ({} points)\n", front.len());
        for p in front.iter().take(30) {
            let _ = writeln!(out, "- error {:.2} %, latency {:.3} ms", p[0], p[1]);
        }
        out.push('\n');
    }
    let mut tf = truth_front.clone();
    tf.sort_by(|a, b| a[1].total_cmp(&b[1]));
    let _ = writeln!(out, "### True front ({} points)\n", tf.len());
    for p in tf.iter().take(30) {
        let _ = writeln!(out, "- error {:.2} %, latency {:.3} ms", p[0], p[1]);
    }
    out
}
