//! Serving metrics, registered once in the shared `hwpr-obs` registry
//! (and therefore rendered by `hwpr-report` like every other subsystem).
//!
//! The coalesce ratio is `serve.requests / serve.batches`; queue depth
//! and in-flight rows are gauges sampled at admission/batch boundaries.
//! All recording is gated on `hwpr_obs::enabled()` so the disabled cost
//! is one relaxed load and the warm serving loop stays allocation-free.

use hwpr_obs::metrics::{registry, Counter, Gauge, Histogram};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, OnceLock};

pub(crate) struct ServeMetrics {
    /// "serve.requests": requests admitted to the queue.
    pub requests: Arc<Counter>,
    /// "serve.batches": coalesced forwards executed; the coalesce ratio
    /// is requests / batches.
    pub batches: Arc<Counter>,
    /// "serve.overloaded": requests shed by backpressure or timeout.
    pub overloaded: Arc<Counter>,
    /// "serve.errors": malformed frames and request-level failures.
    pub errors: Arc<Counter>,
    /// "serve.publishes": registry publishes (hot-swaps included).
    pub publishes: Arc<Counter>,
    /// "serve.request.us": admission-to-reply latency per request.
    pub request_us: Arc<Histogram>,
    /// "serve.batch.us": wall time of one coalesced forward + replies.
    pub batch_us: Arc<Histogram>,
    /// "serve.batch.rows": rows per coalesced forward — shows whether
    /// micro-batching actually fills the engine's batch width.
    pub batch_rows: Arc<Histogram>,
    /// "serve.queue.depth": requests waiting in the admission queue.
    pub queue_depth: Arc<Gauge>,
    /// "serve.inflight.rows": rows admitted but not yet replied to.
    pub inflight: Arc<Gauge>,
    inflight_rows: AtomicI64,
}

impl ServeMetrics {
    /// Tracks admitted-but-unreplied rows and mirrors them to the gauge.
    pub fn inflight_add(&self, rows: i64) {
        let now = self.inflight_rows.fetch_add(rows, Ordering::Relaxed) + rows;
        self.inflight.set(now as f64);
    }
}

pub(crate) fn metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ServeMetrics {
        requests: registry().counter("serve.requests"),
        batches: registry().counter("serve.batches"),
        overloaded: registry().counter("serve.overloaded"),
        errors: registry().counter("serve.errors"),
        publishes: registry().counter("serve.publishes"),
        request_us: registry().histogram(
            "serve.request.us",
            &Histogram::exponential_bounds(1.0, 4.0, 12),
        ),
        batch_us: registry().histogram(
            "serve.batch.us",
            &Histogram::exponential_bounds(1.0, 4.0, 12),
        ),
        batch_rows: registry().histogram(
            "serve.batch.rows",
            &Histogram::exponential_bounds(1.0, 2.0, 10),
        ),
        queue_depth: registry().gauge("serve.queue.depth"),
        inflight: registry().gauge("serve.inflight.rows"),
        inflight_rows: AtomicI64::new(0),
    })
}
