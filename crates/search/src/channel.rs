//! A lock-free MPSC channel for island migration messages.
//!
//! Worker lanes push [`Emigration`](crate::island)-style messages as
//! their islands finish an epoch; the coordinator drains everything
//! after the epoch barrier. The structure is a Treiber stack: `push` is
//! one CAS loop with no locks (workers never wait on each other or on
//! the coordinator), and `drain` is a single atomic swap. Arrival order
//! is whatever the interleaving produced — the coordinator sorts drained
//! messages by island id before merging, which is what makes the merge
//! independent of lane count and scheduling.

use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

struct Node<T> {
    value: T,
    next: *mut Node<T>,
}

/// The lock-free many-producer stack (see the [module docs](self)).
#[derive(Debug)]
pub struct MigrationChannel<T> {
    head: AtomicPtr<Node<T>>,
}

// SAFETY: nodes are heap-allocated and ownership transfers wholly through
// the atomic head — a value is reachable either by the pusher (before the
// successful CAS) or by exactly one drainer (after the swap), never both.
unsafe impl<T: Send> Send for MigrationChannel<T> {}
unsafe impl<T: Send> Sync for MigrationChannel<T> {}

impl<T> Default for MigrationChannel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> MigrationChannel<T> {
    /// Creates an empty channel.
    pub fn new() -> Self {
        Self {
            head: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Pushes `value`, lock-free: retries the head CAS until it wins.
    pub fn push(&self, value: T) {
        let node = Box::into_raw(Box::new(Node {
            value,
            next: ptr::null_mut(),
        }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` was just allocated above and is not yet
            // shared; writing its `next` field is unsynchronised by design
            unsafe { (*node).next = head };
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(current) => head = current,
            }
        }
    }

    /// Takes every pushed value in one atomic swap. Values come back in
    /// push order per producer but with no cross-producer order — sort by
    /// a message key before order-sensitive merging.
    pub fn drain(&self) -> Vec<T> {
        let mut head = self.head.swap(ptr::null_mut(), Ordering::Acquire);
        let mut out = Vec::new();
        while !head.is_null() {
            // SAFETY: the swap made this list exclusively ours; each node
            // was created by `Box::into_raw` in `push`
            let node = unsafe { Box::from_raw(head) };
            out.push(node.value);
            head = node.next;
        }
        // the stack reverses push order; undo it so a single producer's
        // messages read first-pushed-first
        out.reverse();
        out
    }

    /// Whether no message is waiting (racy by nature; exact only at the
    /// epoch barrier when all producers have joined).
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire).is_null()
    }
}

impl<T> Drop for MigrationChannel<T> {
    fn drop(&mut self) {
        // free anything never drained
        let _ = self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_producer_preserves_order() {
        let ch = MigrationChannel::new();
        assert!(ch.is_empty());
        for i in 0..5 {
            ch.push(i);
        }
        assert!(!ch.is_empty());
        assert_eq!(ch.drain(), vec![0, 1, 2, 3, 4]);
        assert!(ch.is_empty());
        assert!(ch.drain().is_empty());
    }

    #[test]
    fn concurrent_pushes_all_arrive() {
        let ch = Arc::new(MigrationChannel::new());
        let producers = 8;
        let per = 250;
        std::thread::scope(|s| {
            for p in 0..producers {
                let ch = Arc::clone(&ch);
                s.spawn(move || {
                    for i in 0..per {
                        ch.push(p * per + i);
                    }
                });
            }
        });
        let mut got = ch.drain();
        got.sort_unstable();
        let expected: Vec<usize> = (0..producers * per).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn undrained_values_are_freed_on_drop() {
        // exercised under the leak-checking test allocator in CI; here it
        // just must not crash
        let ch = MigrationChannel::new();
        ch.push(String::from("left behind"));
        ch.push(String::from("also left"));
        drop(ch);
    }
}
