//! Offline subset of `proptest` (see `vendor/README.md`).
//!
//! Implements the `Strategy` trait with the combinators this workspace
//! uses (`prop_map`, `prop_flat_map`, `prop_filter`, `prop_shuffle`),
//! range and tuple strategies, `collection::vec`, `Just`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros. Cases are
//! generated from a per-test deterministic ChaCha8 stream; there is no
//! shrinking — a failing case reports its generated inputs and panics.

use rand::seq::SliceRandom;
use rand::SampleRange;
pub use rand_chacha::rand_core::SeedableRng;

/// RNG driving test-case generation.
pub type TestRng = rand_chacha::ChaCha8Rng;

/// Per-run configuration (subset of the real `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Deterministic per-test RNG: seeded from the test name so adding a test
/// never reshuffles another test's cases.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(hash)
}

/// A generator of values (no shrinking in this shim).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle { inner: self }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.inner.generate(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive cases",
            self.whence
        );
    }
}

pub struct Shuffle<S> {
    inner: S,
}

impl<S, T> Strategy for Shuffle<S>
where
    S: Strategy<Value = Vec<T>>,
{
    type Value = Vec<T>;

    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let mut values = self.inner.generate(rng);
        values.shuffle(rng);
        values
    }
}

macro_rules! range_strategy_impls {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
    )*};
}

range_strategy_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy_impls {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy_impls! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::SampleRange;

    /// Size specification for [`vec`]: an exact length or a length range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max: exact + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(range: core::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            SizeRange {
                min: range.start,
                max: range.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *range.start(),
                max: *range.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a `Vec` of values from `element` with a
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.min + 1 == self.size.max {
                self.size.min
            } else {
                (self.size.min..self.size.max).sample_from(rng)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// `prop_assert!`: like `assert!` but named per the real crate; failing
/// cases panic (no shrinking) and the harness prints the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                    left,
                    right
                );
            }
        }
    };
}

/// The `proptest!` macro: runs each embedded test function over
/// `config.cases` generated cases. On failure the generated inputs are
/// printed before the panic propagates.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(stringify!($name));
            for __case in 0..config.cases {
                let mut __case_desc = ::std::string::String::new();
                $(
                    let $pat = {
                        let __value = $crate::Strategy::generate(&($strat), &mut rng);
                        __case_desc.push_str(&::std::format!(
                            "  {} = {:?}\n", stringify!($pat), __value
                        ));
                        __value
                    };
                )+
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let ::std::result::Result::Err(payload) = __result {
                    ::std::eprintln!(
                        "proptest case {}/{} failed with inputs:\n{}",
                        __case + 1, config.cases, __case_desc
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_generation() {
        let strat = collection::vec(0.0f32..1.0, 3..8);
        let a: Vec<Vec<f32>> = {
            let mut rng = crate::test_rng("x");
            (0..5).map(|_| strat.generate(&mut rng)).collect()
        };
        let b: Vec<Vec<f32>> = {
            let mut rng = crate::test_rng("x");
            (0..5).map(|_| strat.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_respects_size_bounds(v in collection::vec(0u32..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn shuffle_preserves_elements(v in Just((0..20usize).collect::<Vec<_>>()).prop_shuffle()) {
            let mut sorted = v.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        }

        #[test]
        fn flat_map_and_filter(
            (n, v) in (1usize..6).prop_flat_map(|n| (Just(n), collection::vec(-1.0f64..1.0, n)))
                .prop_filter("nonempty", |(n, _)| *n >= 1),
        ) {
            prop_assert_eq!(v.len(), n);
        }
    }
}
