//! The Pareto ranking training loop (§III-A, Table II).

use crate::config::{ModelConfig, TrainConfig};
use crate::data::{EncodingCache, SurrogateDataset};
use crate::model::HwPrNas;
use crate::Result;
use hwpr_autograd::Tape;
use hwpr_hwmodel::{BenchEntry, Platform};
use hwpr_moo::MooWorkspace;
use hwpr_nasbench::{Architecture, Dataset, SearchSpaceId};
use hwpr_nn::batch::shuffled_batches;
use hwpr_nn::layers::LayerRng;
use hwpr_nn::optim::{AdamW, CosineAnnealing, EarlyStopping, Optimizer};
use hwpr_nn::Binder;
use hwpr_tensor::Matrix;
use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;

/// Summary of one training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Number of epochs actually run (≤ configured epochs).
    pub epochs_run: usize,
    /// Kendall τ between predicted scores and (negated) true Pareto rank
    /// on the validation split.
    pub val_rank_tau: f64,
    /// Final training loss (rank + RMSE terms).
    pub final_loss: f64,
}

/// Adds the within-front score-variance penalty: for every rank group of
/// two or more members, the variance of their scores (flat scores within
/// a front make top-k selection cover the whole front).
fn tie_variance_loss(
    tape_ref: &mut Tape,
    score: hwpr_autograd::Var,
    ranks: &[usize],
    group: &mut Vec<usize>,
) -> Result<Option<hwpr_autograd::Var>> {
    let max_rank = ranks.iter().copied().max().unwrap_or(0);
    let mut terms: Option<hwpr_autograd::Var> = None;
    for rank in 0..=max_rank {
        group.clear();
        group.extend((0..ranks.len()).filter(|&i| ranks[i] == rank));
        if group.len() < 2 {
            continue;
        }
        let s = tape_ref
            .gather_rows(score, group)
            .map_err(hwpr_nn::NnError::from)?;
        let sq = tape_ref.mul(s, s).map_err(hwpr_nn::NnError::from)?;
        let mean_sq = tape_ref.mean_all(sq);
        let mean = tape_ref.mean_all(s);
        let mean2 = tape_ref.mul(mean, mean).map_err(hwpr_nn::NnError::from)?;
        let var = tape_ref
            .sub(mean_sq, mean2)
            .map_err(hwpr_nn::NnError::from)?;
        terms = Some(match terms {
            None => var,
            Some(acc) => tape_ref.add(acc, var).map_err(hwpr_nn::NnError::from)?,
        });
    }
    Ok(terms)
}

/// Sorts batch-local indices best-rank-first into `order`, shuffling ties
/// so the listwise loss sees a valid (and unbiased) permutation. Reuses
/// the caller's buffer so steady-state batches allocate nothing.
fn rank_order_into(ranks: &[usize], rng: &mut LayerRng, order: &mut Vec<usize>) {
    order.clear();
    order.extend(0..ranks.len());
    order.shuffle(rng);
    // ties arrive pre-shuffled, so the (in-place) unstable sort still
    // yields a random within-rank order
    order.sort_unstable_by_key(|&i| ranks[i]);
}

/// Allocating convenience wrapper around [`rank_order_into`].
#[cfg(test)]
fn rank_order(ranks: &[usize], rng: &mut LayerRng) -> Vec<usize> {
    let mut order = Vec::new();
    rank_order_into(ranks, rng, &mut order);
    order
}

impl HwPrNas {
    /// Trains a single-platform model on `data` with the Pareto ranking
    /// loss plus per-branch RMSE (§III-A).
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError`] on empty data or layer failures.
    pub fn fit(
        data: &SurrogateDataset,
        model_config: &ModelConfig,
        train_config: &TrainConfig,
    ) -> Result<(Self, TrainReport)> {
        let space = data.samples()[0].arch.space();
        let mixed = data.samples().iter().any(|s| s.arch.space() != space);
        let cache = if mixed {
            EncodingCache::for_mixed(data.dataset())
        } else {
            EncodingCache::for_space(space, data.dataset())
        };
        let (train, val) = data.split(0.2, train_config.seed)?;
        let train_archs: Vec<Architecture> =
            train.samples().iter().map(|s| s.arch.clone()).collect();
        let mut model = Self::build(
            model_config,
            cache,
            &train_archs,
            vec![data.platform()],
            vec![data.max_latency().max(1e-9)],
            data.dataset(),
        )?;
        let report = train_loop(&mut model, &train, &val, train_config)?;
        Ok((model, report))
    }

    /// Trains a multi-platform model: one shared LSTM encoder with a bank
    /// of per-platform latency heads (§III-E). Latency targets come from
    /// the benchmark rows for every requested platform.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError`] on empty data or layer failures.
    pub fn fit_multi(
        entries: &[BenchEntry],
        dataset: Dataset,
        platforms: &[Platform],
        model_config: &ModelConfig,
        train_config: &TrainConfig,
    ) -> Result<(Self, TrainReport)> {
        if entries.is_empty() || platforms.is_empty() {
            return Err(crate::CoreError::Data(
                "multi-platform training needs entries and platforms".into(),
            ));
        }
        // train round-robin: each platform gets its own dataset view and
        // the shared encoders see every batch
        let space = entries[0].arch().space();
        let mixed = entries.iter().any(|e| e.arch().space() != space);
        let cache = if mixed {
            EncodingCache::for_mixed(dataset)
        } else {
            EncodingCache::for_space(space, dataset)
        };
        let per_platform: Vec<SurrogateDataset> = platforms
            .iter()
            .map(|&p| SurrogateDataset::from_entries(entries, dataset, p))
            .collect::<Result<_>>()?;
        let train_archs: Vec<Architecture> = entries.iter().map(|e| e.arch().clone()).collect();
        let max_latency: Vec<f64> = per_platform
            .iter()
            .map(|d| d.max_latency().max(1e-9))
            .collect();
        let mut model = Self::build(
            model_config,
            cache,
            &train_archs,
            platforms.to_vec(),
            max_latency,
            dataset,
        )?;
        // rotate the trained platform each epoch; validation tracks the
        // first platform for early stopping
        let mut report = TrainReport {
            epochs_run: 0,
            val_rank_tau: 0.0,
            final_loss: f64::INFINITY,
        };
        for (round, ds) in per_platform
            .iter()
            .cycle()
            .take(platforms.len())
            .enumerate()
        {
            let mut cfg = train_config.clone();
            cfg.epochs = (train_config.epochs / platforms.len()).max(1);
            cfg.seed = train_config.seed.wrapping_add(round as u64);
            let (train, val) = ds.split(0.2, cfg.seed)?;
            let r = train_loop(&mut model, &train, &val, &cfg)?;
            report.epochs_run += r.epochs_run;
            report.val_rank_tau = r.val_rank_tau;
            report.final_loss = r.final_loss;
        }
        Ok((model, report))
    }
}

/// Runs the epoch loop for whichever platform `train` targets.
fn train_loop(
    model: &mut HwPrNas,
    train: &SurrogateDataset,
    val: &SurrogateDataset,
    config: &TrainConfig,
) -> Result<TrainReport> {
    let slot = model.platform_slot(train.platform())?;
    let max_lat = model.max_latency[slot];
    let mut optimizer = AdamW::new(config.learning_rate).with_weight_decay(config.weight_decay);
    let schedule = CosineAnnealing::new(
        config.learning_rate,
        config.learning_rate * 0.01,
        config.epochs,
    );
    let mut stopper = EarlyStopping::new(config.early_stop_patience);
    let mut rng = LayerRng::seed_from_u64(config.seed);
    let samples = train.samples();
    // §III-A: Pareto ranks are computed over the whole training set
    // *before* batching; each batch is ordered by these global ranks
    let global_objectives: Vec<Vec<f64>> = samples.iter().map(|s| s.objectives()).collect();
    // one workspace serves the global ranking and every per-epoch
    // validation ranking without reallocating
    let mut moo = MooWorkspace::new();
    let global_ranks = moo.pareto_ranks(&global_objectives)?.to_vec();
    let mut final_loss = f64::INFINITY;
    let mut epochs_run = 0;
    let mut best_tau = -1.0f64;
    // training arena: one tape plus staging buffers, allocated once and
    // reused every batch — in steady state (fixed batch size) a step
    // performs no heap allocation
    let mut tape = Tape::new();
    let mut bound: Vec<Option<hwpr_autograd::Var>> = Vec::new();
    let mut grads: Vec<Option<Matrix>> = Vec::new();
    let mut batch_archs: Vec<Architecture> = Vec::with_capacity(config.batch_size);
    let mut batch_ranks: Vec<usize> = Vec::with_capacity(config.batch_size);
    let mut order: Vec<usize> = Vec::with_capacity(config.batch_size);
    let mut group: Vec<usize> = Vec::with_capacity(config.batch_size);
    let _train_span = hwpr_obs::span("train.loop");
    for epoch in 0..config.epochs {
        let epoch_started = hwpr_obs::enabled().then(std::time::Instant::now);
        let learning_rate = schedule.learning_rate_at(epoch);
        optimizer.set_learning_rate(learning_rate);
        let batches = shuffled_batches(
            samples.len(),
            config.batch_size,
            config.seed.wrapping_add(epoch as u64),
        );
        let mut epoch_loss = 0.0f64;
        for batch in &batches {
            if batch.len() < 2 {
                continue;
            }
            batch_archs.clear();
            batch_archs.extend(batch.iter().map(|&i| samples[i].arch.clone()));
            batch_ranks.clear();
            batch_ranks.extend(batch.iter().map(|&i| global_ranks[i]));
            rank_order_into(&batch_ranks, &mut rng, &mut order);
            tape.reset();
            let mut binder =
                Binder::rebind(&mut tape, &model.params, std::mem::take(&mut bound), true);
            let out = model.forward(&mut binder, &batch_archs, slot, &mut rng)?;
            let tape_ref = binder.tape();
            let rank_loss = tape_ref.list_mle(out.score, &order)?;
            // normalise the listwise loss by the batch size so batches of
            // different sizes weigh equally
            let mut rank_loss =
                tape_ref.scale(rank_loss, config.rank_loss_weight / batch.len() as f32);
            if config.tie_regularizer_weight > 0.0 {
                if let Some(var) = tie_variance_loss(tape_ref, out.score, &batch_ranks, &mut group)?
                {
                    let var = tape_ref.scale(var, config.tie_regularizer_weight);
                    rank_loss = tape_ref.add(rank_loss, var)?;
                }
            }
            // regression targets live in pooled tape storage, recycled below
            let mut acc_targets = tape_ref.alloc(batch.len(), 1);
            for (dst, &i) in acc_targets.as_mut_slice().iter_mut().zip(batch) {
                *dst = (samples[i].accuracy / 100.0) as f32;
            }
            let mut lat_targets = tape_ref.alloc(batch.len(), 1);
            for (dst, &i) in lat_targets.as_mut_slice().iter_mut().zip(batch) {
                *dst = (samples[i].latency_ms / max_lat) as f32;
            }
            let acc_mse = tape_ref.mse_loss(out.accuracy, &acc_targets)?;
            let acc_rmse = tape_ref.sqrt(acc_mse, 1e-9);
            let lat_mse = tape_ref.mse_loss(out.latency, &lat_targets)?;
            let lat_rmse = tape_ref.sqrt(lat_mse, 1e-9);
            tape_ref.recycle(acc_targets);
            tape_ref.recycle(lat_targets);
            let rmse_sum = tape_ref.add(acc_rmse, lat_rmse)?;
            let rmse_term = tape_ref.scale(rmse_sum, config.rmse_loss_weight);
            let loss = tape_ref.add(rank_loss, rmse_term)?;
            epoch_loss += tape_ref.value(loss)[(0, 0)] as f64;
            bound = binder.finish_into(loss, &mut grads)?;
            optimizer.step(&mut model.params, &grads);
        }
        epochs_run = epoch + 1;
        final_loss = epoch_loss / batches.len().max(1) as f64;
        // validation: how well do predicted scores rank the true fronts?
        let rank = validation_rank(model, val, slot, &mut moo)?;
        best_tau = best_tau.max(rank.kendall_tau);
        if let Some(start) = epoch_started {
            let epoch_ms = start.elapsed().as_secs_f64() * 1e3;
            hwpr_obs::record_with("train.epoch", || {
                vec![
                    hwpr_obs::field("epoch", epoch as u64),
                    hwpr_obs::field("loss", final_loss),
                    hwpr_obs::field("lr", learning_rate as f64),
                    hwpr_obs::field("kendall_tau", rank.kendall_tau),
                    hwpr_obs::field("spearman", rank.spearman),
                    hwpr_obs::field("epoch_ms", epoch_ms),
                ]
            });
        }
        if stopper.update(1.0 - rank.kendall_tau as f32) {
            break;
        }
    }
    // §IV-A: retrain the fusion layer alone (frozen branches) with only
    // the ranking loss for an optimal final Pareto ordering
    if config.fusion_finetune_epochs > 0 {
        let mut fusion_opt =
            AdamW::new(config.learning_rate).with_weight_decay(config.weight_decay);
        for epoch in 0..config.fusion_finetune_epochs {
            let batches = shuffled_batches(
                samples.len(),
                config.batch_size,
                config.seed.wrapping_add(10_000 + epoch as u64),
            );
            for batch in &batches {
                if batch.len() < 2 {
                    continue;
                }
                batch_archs.clear();
                batch_archs.extend(batch.iter().map(|&i| samples[i].arch.clone()));
                batch_ranks.clear();
                batch_ranks.extend(batch.iter().map(|&i| global_ranks[i]));
                rank_order_into(&batch_ranks, &mut rng, &mut order);
                tape.reset();
                let mut binder =
                    Binder::rebind(&mut tape, &model.params, std::mem::take(&mut bound), true);
                let out = model.forward(&mut binder, &batch_archs, slot, &mut rng)?;
                let tape_ref = binder.tape();
                let mut loss = tape_ref.list_mle(out.score, &order)?;
                loss = tape_ref.scale(loss, 1.0 / batch.len() as f32);
                if config.tie_regularizer_weight > 0.0 {
                    if let Some(var) =
                        tie_variance_loss(tape_ref, out.score, &batch_ranks, &mut group)?
                    {
                        let var = tape_ref.scale(var, config.tie_regularizer_weight);
                        loss = tape_ref.add(loss, var)?;
                    }
                }
                bound = binder.finish_into(loss, &mut grads)?;
                for g in grads.iter_mut().take(model.fusion_param_start) {
                    *g = None;
                }
                fusion_opt.step(&mut model.params, &grads);
            }
        }
        best_tau = best_tau.max(validation_rank(model, val, slot, &mut moo)?.kendall_tau);
    }
    Ok(TrainReport {
        epochs_run,
        val_rank_tau: best_tau,
        final_loss,
    })
}

/// Rank agreement between predicted scores and the true Pareto ordering
/// on a validation split.
struct ValidationRank {
    /// Kendall τ against negated true Pareto ranks (the early-stop signal).
    kendall_tau: f64,
    /// Spearman ρ against the same targets (reported in telemetry).
    spearman: f64,
}

/// Scores the validation split once and computes both rank correlations.
fn validation_rank(
    model: &HwPrNas,
    val: &SurrogateDataset,
    slot: usize,
    moo: &mut MooWorkspace,
) -> Result<ValidationRank> {
    let archs: Vec<Architecture> = val.samples().iter().map(|s| s.arch.clone()).collect();
    let objectives: Vec<Vec<f64>> = val.samples().iter().map(|s| s.objectives()).collect();
    let ranks = moo.pareto_ranks(&objectives)?;
    let platform = model.platforms[slot];
    // the tape reference path: parameters are still changing every epoch,
    // so compiling (and immediately invalidating) a frozen engine per
    // validation pass would waste the pack work
    let scores = model.predict_scores_tape(&archs, platform)?;
    let pred: Vec<f32> = scores.iter().map(|&s| s as f32).collect();
    let truth: Vec<f32> = ranks.iter().map(|&r| -(r as f32)).collect();
    Ok(ValidationRank {
        kendall_tau: hwpr_metrics::kendall_tau(&pred, &truth).unwrap_or(0.0),
        spearman: hwpr_metrics::spearman(&pred, &truth).unwrap_or(0.0),
    })
}

/// Fraction of NAS-Bench-201 architectures in a list (used in Table IV).
pub fn nb201_fraction(archs: &[Architecture]) -> f64 {
    if archs.is_empty() {
        return 0.0;
    }
    archs
        .iter()
        .filter(|a| a.space() == SearchSpaceId::NasBench201)
        .count() as f64
        / archs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SurrogateDataset;
    use hwpr_hwmodel::{SimBench, SimBenchConfig};

    fn bench(n: usize) -> SimBench {
        SimBench::generate(SimBenchConfig {
            space: SearchSpaceId::NasBench201,
            sample_size: Some(n),
            seed: 5,
        })
    }

    #[test]
    fn rank_order_groups_by_rank() {
        let mut rng = LayerRng::seed_from_u64(0);
        let ranks = vec![2, 0, 1, 0, 2];
        let order = rank_order(&ranks, &mut rng);
        let sorted: Vec<usize> = order.iter().map(|&i| ranks[i]).collect();
        assert_eq!(sorted, vec![0, 0, 1, 2, 2]);
    }

    #[test]
    fn training_learns_to_rank() {
        // enough data and epochs that the surrogate clearly beats chance
        let b = bench(160);
        let data =
            SurrogateDataset::from_simbench(&b, Dataset::Cifar10, Platform::EdgeGpu).unwrap();
        let mut cfg = TrainConfig::tiny();
        cfg.epochs = 16;
        let (_, report) = HwPrNas::fit(&data, &ModelConfig::tiny(), &cfg).unwrap();
        assert!(
            report.val_rank_tau > 0.2,
            "surrogate failed to learn: tau {}",
            report.val_rank_tau
        );
    }

    #[test]
    fn multi_platform_training_runs() {
        let b = bench(48);
        let (model, report) = HwPrNas::fit_multi(
            b.entries(),
            Dataset::Cifar10,
            &[Platform::EdgeGpu, Platform::Pixel3],
            &ModelConfig::tiny(),
            &TrainConfig::tiny(),
        )
        .unwrap();
        assert_eq!(model.platforms().len(), 2);
        assert!(report.epochs_run >= 2);
        let archs = vec![b.entries()[0].arch().clone()];
        assert!(model.predict_scores(&archs, Platform::Pixel3).is_ok());
        assert!(model.predict_scores(&archs, Platform::EdgeGpu).is_ok());
        assert!(model.predict_scores(&archs, Platform::Eyeriss).is_err());
    }

    #[test]
    fn fit_multi_rejects_empty() {
        assert!(HwPrNas::fit_multi(
            &[],
            Dataset::Cifar10,
            &[Platform::EdgeGpu],
            &ModelConfig::tiny(),
            &TrainConfig::tiny()
        )
        .is_err());
    }

    #[test]
    fn nb201_fraction_counts() {
        use hwpr_nasbench::FbnetOp;
        let a = Architecture::nb201_from_index(0).unwrap();
        let f = Architecture::fbnet([FbnetOp::Skip; 22]);
        assert_eq!(nb201_fraction(&[a.clone(), f.clone()]), 0.5);
        assert_eq!(nb201_fraction(&[a]), 1.0);
        assert_eq!(nb201_fraction(&[]), 0.0);
    }
}
